// Internal interface between the verifier's entry points (verify.cc) and
// the three analyses (plan_checker.cc, program_checker.cc,
// pipeline_checker.cc).

#pragma once

#include "verify/verify.h"

namespace dbspinner {

class PhysicalOp;

namespace verify {
namespace internal {

/// Structural + type/schema validation of one logical plan tree (V0xx).
void CheckPlan(const LogicalOp& plan, const VerifyContext& ctx, int step_id,
               VerifyReport* report);

/// Step-payload validation and the dataflow abstract interpretation over the
/// whole program (V1xx, plus result-scan V008 checks that need binding
/// state).
void CheckProgram(const Program& program, const VerifyContext& ctx,
                  VerifyReport* report);

/// Physical-plan & fused-pipeline validation (V2xx) of one compiled step.
/// Requires step.physical != nullptr; step.plan (when present) drives the
/// physical↔logical agreement walk.
void CheckPhysicalStep(const Step& step, const VerifyContext& ctx,
                       VerifyReport* report);

/// Physical-plan variant of CheckPhysicalStep for standalone trees (unit
/// tests build broken physical artifacts without a surrounding Step).
void CheckPhysicalPlan(const PhysicalOp& plan, const LogicalOp* logical,
                       const VerifyContext& ctx, int step_id,
                       VerifyReport* report);

/// Truncated single-node physical-plan excerpt for diagnostics.
std::string PhysicalExcerpt(const PhysicalOp& op);

/// Truncated single-node plan excerpt for diagnostics.
std::string PlanExcerpt(const LogicalOp& op);

/// One-line step excerpt ("step 4 kRename 'x' -> 'y'").
std::string StepExcerpt(const Step& step);

}  // namespace internal
}  // namespace verify
}  // namespace dbspinner
