// Internal interface between the verifier's entry points (verify.cc) and
// the two analyses (plan_checker.cc, program_checker.cc).

#pragma once

#include "verify/verify.h"

namespace dbspinner {
namespace verify {
namespace internal {

/// Structural + type/schema validation of one logical plan tree (V0xx).
void CheckPlan(const LogicalOp& plan, const VerifyContext& ctx, int step_id,
               VerifyReport* report);

/// Step-payload validation and the dataflow abstract interpretation over the
/// whole program (V1xx, plus result-scan V008 checks that need binding
/// state).
void CheckProgram(const Program& program, const VerifyContext& ctx,
                  VerifyReport* report);

/// Truncated single-node plan excerpt for diagnostics.
std::string PlanExcerpt(const LogicalOp& op);

/// One-line step excerpt ("step 4 kRename 'x' -> 'y'").
std::string StepExcerpt(const Step& step);

}  // namespace internal
}  // namespace verify
}  // namespace dbspinner
