// Program dataflow verifier: V101..V111 (plus result-scan V008 checks that
// need binding state).
//
// The Program is a linear step list with two kinds of control transfer:
// kLoopCheck jumps *to* the step with id `jump_to_id` when the loop
// continues, and kInitLoop jumps *past* the step with id `jump_to_id` when
// the loop runs zero iterations. Over that CFG the checker runs
//
//   1. a forward "must" abstract interpretation of registry-name states
//      ({unbound, bound, moved} plus a definitely-unread bit and the bound
//      schema) to a fixpoint, diagnosing V101/V102/V103/V008 only on
//      converged, definite states — a state that differs between paths is
//      demoted to "maybe" and never diagnosed, so the analysis cannot false-
//      positive on the loop back edges;
//   2. a backward liveness fixpoint for V104 (loop-body materializations
//      that no path ever consumes);
//   3. structural passes: step payloads and ids (V110), final-step placement
//      (V111), jump-target validity (V105), static non-termination (V106),
//      hoist soundness (V107), re-derivation of the Fig 10 pushdown-legality
//      fact against the actual Ri plan (V108), and the aliasing /
//      retry-idempotency model cross-check (V109).

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "exec/program_executor.h"
#include "plan/logical_plan.h"
#include "plan/program.h"
#include "verify/verify_internal.h"

namespace dbspinner {
namespace verify {
namespace internal {

namespace {

bool SameTypeVec(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).type != b.column(i).type) return false;
  }
  return true;
}

/// Appends every result name the plan reads: kResult scans plus the
/// delta-restrict side input.
void CollectPlanReads(const LogicalOp& op, std::vector<std::string>* out) {
  if (op.kind == LogicalOpKind::kScan &&
      op.scan_source == ScanSource::kResult) {
    out->push_back(ToLower(op.scan_name));
  }
  if (op.kind == LogicalOpKind::kDeltaRestrict && !op.delta_source.empty()) {
    out->push_back(ToLower(op.delta_source));
  }
  for (const LogicalOpPtr& child : op.children) {
    if (child != nullptr) CollectPlanReads(*child, out);
  }
}

/// Result-scan schemas the plan asserts, for V008 against the bound state.
void CollectResultScans(const LogicalOp& op,
                        std::vector<const LogicalOp*>* out) {
  if (op.kind == LogicalOpKind::kScan &&
      op.scan_source == ScanSource::kResult) {
    out->push_back(&op);
  }
  for (const LogicalOpPtr& child : op.children) {
    if (child != nullptr) CollectResultScans(*child, out);
  }
}

/// Registry-name effects of one step, mirroring the executor's semantics.
struct StepIO {
  std::vector<std::string> reads;
  std::vector<std::string> binds;    ///< names (re)bound to a fresh value
  std::vector<std::string> moves;    ///< names consumed (rename/merge source)
  std::vector<std::string> removes;  ///< names explicitly unbound
};

StepIO ComputeStepIO(const Step& step) {
  StepIO io;
  std::string target = ToLower(step.target);
  std::string source = ToLower(step.source);
  switch (step.kind) {
    case Step::Kind::kMaterialize:
      if (step.plan != nullptr) CollectPlanReads(*step.plan, &io.reads);
      io.binds.push_back(target);
      break;
    case Step::Kind::kFinal:
      if (step.plan != nullptr) CollectPlanReads(*step.plan, &io.reads);
      break;
    case Step::Kind::kRename:
      io.reads.push_back(source);
      io.moves.push_back(source);
      io.binds.push_back(target);
      break;
    case Step::Kind::kMergeUpdate:
      io.reads.push_back(target);
      io.reads.push_back(source);
      io.moves.push_back(source);
      io.binds.push_back(target);
      break;
    case Step::Kind::kAppendResult:
    case Step::Kind::kDedupeResult:
      io.reads.push_back(target);
      io.reads.push_back(source);
      io.binds.push_back(target);
      break;
    case Step::Kind::kCopyResult:
      io.reads.push_back(source);
      io.binds.push_back(target);
      break;
    case Step::Kind::kRemoveResult:
      io.removes.push_back(target);
      break;
    case Step::Kind::kInitLoop:
      // The executor snapshots the CTE for delta conditions at init and
      // evaluates the 0-iteration condition when a skip target is set.
      if (step.loop.kind == LoopSpec::Kind::kDeltaLess) {
        io.reads.push_back(ToLower(step.loop.cte_name));
      } else if (step.jump_to_id != 0) {
        if (step.loop.kind == LoopSpec::Kind::kAny ||
            step.loop.kind == LoopSpec::Kind::kAll) {
          io.reads.push_back(ToLower(step.loop.cte_name));
        } else if (step.loop.kind == LoopSpec::Kind::kWhileResultNonEmpty) {
          io.reads.push_back(ToLower(step.loop.watch_name));
        }
      }
      break;
    case Step::Kind::kLoopCheck:
      if (step.loop.kind == LoopSpec::Kind::kAny ||
          step.loop.kind == LoopSpec::Kind::kAll ||
          step.loop.kind == LoopSpec::Kind::kDeltaLess) {
        io.reads.push_back(ToLower(step.loop.cte_name));
      } else if (step.loop.kind == LoopSpec::Kind::kWhileResultNonEmpty) {
        io.reads.push_back(ToLower(step.loop.watch_name));
      }
      break;
    case Step::Kind::kComputeDelta:
      io.reads.push_back(source);
      io.binds.push_back(target);
      break;
  }
  return io;
}

/// Abstract state of one registry name on the paths reaching a step.
struct NameInfo {
  enum class S { kUnbound, kBound, kMoved };
  S state = S::kUnbound;
  bool definite = true;  ///< false: paths disagree; never diagnosed
  bool unread = false;   ///< kBound and not read since the binding
  int event_step = -1;   ///< step id of the last bind / move / remove
  bool has_schema = false;
  Schema schema;

  /// Fixpoint equality; event_step and schema names are diagnostic-only.
  bool SameAs(const NameInfo& other) const {
    if (state != other.state || definite != other.definite ||
        unread != other.unread || has_schema != other.has_schema) {
      return false;
    }
    return !has_schema || SameTypeVec(schema, other.schema);
  }
};

using AbstractState = std::map<std::string, NameInfo>;

NameInfo GetOrDefault(const AbstractState& state, const std::string& name) {
  auto it = state.find(name);
  return it == state.end() ? NameInfo{} : it->second;
}

NameInfo MeetInfo(const NameInfo& a, const NameInfo& b) {
  NameInfo m;
  if (a.state != b.state) {
    m.state = a.state;
    m.definite = false;
    return m;
  }
  m = a;
  m.definite = a.definite && b.definite;
  m.unread = a.unread && b.unread;
  if (a.has_schema && b.has_schema && SameTypeVec(a.schema, b.schema)) {
    // keep a's schema
  } else {
    m.has_schema = false;
    m.schema = Schema();
  }
  return m;
}

AbstractState MeetStates(const AbstractState& a, const AbstractState& b) {
  AbstractState out = a;
  for (const auto& [name, info] : b) {
    out[name] = MeetInfo(GetOrDefault(a, name), info);
  }
  for (auto& [name, info] : out) {
    if (b.find(name) == b.end()) {
      info = MeetInfo(info, NameInfo{});
    }
  }
  return out;
}

bool StatesEqual(const AbstractState& a, const AbstractState& b) {
  std::set<std::string> names;
  for (const auto& [name, info] : a) names.insert(name);
  for (const auto& [name, info] : b) names.insert(name);
  for (const std::string& name : names) {
    if (!GetOrDefault(a, name).SameAs(GetOrDefault(b, name))) return false;
  }
  return true;
}

/// The step kinds the verifier's effect model classifies as safely
/// re-runnable after a mid-step failure: their only inputs are registry
/// bindings they do not consume, and their side effects (re)bind a target
/// from scratch rather than accumulating into it. kRename consumes its
/// source (a re-run finds it unbound) and kAppendResult/kDedupeResult fold
/// into the prior target value (a re-run would double-apply), so they are
/// excluded. Cross-checked against the executor's retry whitelist (V109).
bool ModelStepIsIdempotent(Step::Kind kind) {
  switch (kind) {
    case Step::Kind::kMaterialize:
    case Step::Kind::kFinal:
    case Step::Kind::kMergeUpdate:
    case Step::Kind::kComputeDelta:
      return true;
    default:
      return false;
  }
}

constexpr Step::Kind kAllStepKinds[] = {
    Step::Kind::kMaterialize,  Step::Kind::kRename,
    Step::Kind::kMergeUpdate,  Step::Kind::kAppendResult,
    Step::Kind::kDedupeResult, Step::Kind::kCopyResult,
    Step::Kind::kRemoveResult, Step::Kind::kInitLoop,
    Step::Kind::kLoopCheck,    Step::Kind::kComputeDelta,
    Step::Kind::kFinal,
};

/// True when output column `col` of `op` is a verbatim copy of column `col`
/// of the iterative CTE `cte` on every path through the plan — the property
/// the pass_through[] legality fact asserts (Fig 10). Conservative: any
/// operator this walk does not understand fails the column.
bool ColumnPassesThrough(const LogicalOp& op, size_t col,
                         const std::string& cte) {
  switch (op.kind) {
    case LogicalOpKind::kScan:
      return op.scan_source == ScanSource::kResult &&
             EqualsIgnoreCase(op.scan_name, cte);
    case LogicalOpKind::kValues:
      return op.rows.empty();  // vacuously true: contributes no rows
    case LogicalOpKind::kFilter:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDeltaRestrict:
      return !op.children.empty() && op.children[0] != nullptr &&
             ColumnPassesThrough(*op.children[0], col, cte);
    case LogicalOpKind::kProject: {
      if (op.children.empty() || op.children[0] == nullptr) return false;
      if (col >= op.projections.size()) return false;
      const BoundExpr* e = op.projections[col].get();
      if (e == nullptr || e->kind != BoundExprKind::kColumnRef) return false;
      return ColumnPassesThrough(*op.children[0], e->column_index, cte);
    }
    case LogicalOpKind::kUnionAll:
      return op.children.size() == 2 && op.children[0] != nullptr &&
             op.children[1] != nullptr &&
             ColumnPassesThrough(*op.children[0], col, cte) &&
             ColumnPassesThrough(*op.children[1], col, cte);
    default:
      return false;
  }
}

/// True if any node of `kind` appears in the plan.
bool PlanContainsKind(const LogicalOp& op, LogicalOpKind kind) {
  if (op.kind == kind) return true;
  for (const LogicalOpPtr& child : op.children) {
    if (child != nullptr && PlanContainsKind(*child, kind)) return true;
  }
  return false;
}

/// First catalog scan, or result scan of a name other than `allowed`, in the
/// plan; nullptr if none.
const LogicalOp* FindForeignScan(const LogicalOp& op,
                                 const std::string& allowed) {
  if (op.kind == LogicalOpKind::kScan) {
    if (op.scan_source == ScanSource::kCatalog) return &op;
    if (!EqualsIgnoreCase(op.scan_name, allowed)) return &op;
  }
  for (const LogicalOpPtr& child : op.children) {
    if (child == nullptr) continue;
    const LogicalOp* found = FindForeignScan(*child, allowed);
    if (found != nullptr) return found;
  }
  return nullptr;
}

class ProgramChecker {
 public:
  ProgramChecker(const Program& program, const VerifyContext& ctx,
                 VerifyReport* report)
      : program_(program), ctx_(ctx), report_(report) {}

  void Check() {
    CheckPayloads();        // V110, V111, V109 aliasing
    CheckIdempotencyModel();  // V109 whitelist cross-check
    CheckLoops();           // V105, V106, V107
    CheckIterativeCteFacts();  // V108 + metadata V110
    if (structurally_broken_) {
      // The CFG is not trustworthy (dangling jump targets / duplicate
      // ids); the dataflow analyses would chase bogus edges.
      return;
    }
    RunDataflow();  // V101, V102, V103, V008
    RunLiveness();  // V104
  }

 private:
  void Add(DefectCode code, const Step& step, std::string detail) {
    report_->Add(code, step.id, std::move(detail), StepExcerpt(step));
  }

  // ---- CFG -------------------------------------------------------------

  /// Successor indices of step `i`, honoring the two jump kinds.
  std::vector<size_t> Successors(size_t i) const {
    const Step& step = program_.steps[i];
    std::vector<size_t> out;
    size_t n = program_.steps.size();
    if (i + 1 < n) out.push_back(i + 1);
    if (step.kind == Step::Kind::kLoopCheck) {
      int t = program_.FindStep(step.jump_to_id);
      if (t >= 0) out.push_back(static_cast<size_t>(t));
    } else if (step.kind == Step::Kind::kInitLoop && step.jump_to_id != 0) {
      int t = program_.FindStep(step.jump_to_id);
      if (t >= 0 && static_cast<size_t>(t) + 1 < n) {
        out.push_back(static_cast<size_t>(t) + 1);  // jump *past* the check
      }
    }
    return out;
  }

  // ---- V110 / V111 / V109 (aliasing) -----------------------------------

  void CheckPayloads() {
    std::set<int> ids;
    int final_count = 0;
    for (size_t i = 0; i < program_.steps.size(); ++i) {
      const Step& step = program_.steps[i];
      if (!ids.insert(step.id).second) {
        Add(DefectCode::kV110, step,
            StringPrintf("duplicate step id %d", step.id));
        structurally_broken_ = true;
      }
      bool wants_plan = step.kind == Step::Kind::kMaterialize ||
                        step.kind == Step::Kind::kFinal;
      if (wants_plan && step.plan == nullptr) {
        Add(DefectCode::kV110, step,
            StringPrintf("%s step has no plan", step.KindName()));
        structurally_broken_ = true;
      }
      if (!wants_plan && step.plan != nullptr) {
        Add(DefectCode::kV110, step,
            StringPrintf("%s step carries an unexpected plan",
                         step.KindName()));
      }
      if (wants_plan && ctx_.require_physical && step.physical == nullptr) {
        Add(DefectCode::kV110, step,
            StringPrintf("%s step has no physical plan after compilation",
                         step.KindName()));
      }
      bool wants_target = step.kind != Step::Kind::kFinal &&
                          step.kind != Step::Kind::kInitLoop &&
                          step.kind != Step::Kind::kLoopCheck;
      if (wants_target && step.target.empty()) {
        Add(DefectCode::kV110, step,
            StringPrintf("%s step has an empty target name",
                         step.KindName()));
        structurally_broken_ = true;
      }
      bool wants_source = step.kind == Step::Kind::kRename ||
                          step.kind == Step::Kind::kMergeUpdate ||
                          step.kind == Step::Kind::kAppendResult ||
                          step.kind == Step::Kind::kDedupeResult ||
                          step.kind == Step::Kind::kCopyResult ||
                          step.kind == Step::Kind::kComputeDelta;
      if (wants_source && step.source.empty()) {
        Add(DefectCode::kV110, step,
            StringPrintf("%s step has an empty source name",
                         step.KindName()));
        structurally_broken_ = true;
      }
      if (wants_source && !step.source.empty() && !step.target.empty() &&
          EqualsIgnoreCase(step.source, step.target)) {
        Add(DefectCode::kV109, step,
            StringPrintf("%s step aliases source and target '%s'",
                         step.KindName(), step.target.c_str()));
      }
      if (step.kind == Step::Kind::kInitLoop ||
          step.kind == Step::Kind::kLoopCheck) {
        CheckLoopSpecPayload(step);
      }
      if (step.kind == Step::Kind::kFinal) {
        ++final_count;
        if (i + 1 != program_.steps.size()) {
          Add(DefectCode::kV111, step,
              StringPrintf("final step at index %zu of %zu is not last", i,
                           program_.steps.size()));
        }
        if (final_count > 1) {
          Add(DefectCode::kV111, step, "program has multiple final steps");
        }
      }
    }
  }

  void CheckLoopSpecPayload(const Step& step) {
    const LoopSpec& spec = step.loop;
    switch (spec.kind) {
      case LoopSpec::Kind::kAny:
      case LoopSpec::Kind::kAll:
        if (spec.expr == nullptr) {
          Add(DefectCode::kV110, step,
              StringPrintf("%s loop condition has no expression",
                           spec.TypeName()));
        }
        if (spec.cte_name.empty()) {
          Add(DefectCode::kV110, step,
              "data-driven loop condition has no CTE name");
        }
        break;
      case LoopSpec::Kind::kDeltaLess:
        if (spec.cte_name.empty()) {
          Add(DefectCode::kV110, step,
              "delta loop condition has no CTE name");
        }
        break;
      case LoopSpec::Kind::kWhileResultNonEmpty:
        if (spec.watch_name.empty()) {
          Add(DefectCode::kV110, step,
              "while-non-empty loop condition has no watch name");
        }
        break;
      case LoopSpec::Kind::kIterations:
      case LoopSpec::Kind::kUpdates:
        break;
    }
  }

  // ---- V109 whitelist cross-check --------------------------------------

  void CheckIdempotencyModel() {
    for (Step::Kind kind : kAllStepKinds) {
      if (StepIsIdempotent(kind) != ModelStepIsIdempotent(kind)) {
        Step probe;  // synthetic: diagnostic only, not tied to a step
        probe.kind = kind;
        probe.id = -1;
        report_->Add(
            DefectCode::kV109, -1,
            StringPrintf("executor retry whitelist classifies %s as %s but "
                         "the verifier's effect model says %s",
                         probe.KindName(),
                         StepIsIdempotent(kind) ? "idempotent"
                                                : "non-idempotent",
                         ModelStepIsIdempotent(kind) ? "idempotent"
                                                     : "non-idempotent"));
      }
    }
  }

  // ---- V105 / V106 / V107 ----------------------------------------------

  void CheckLoops() {
    size_t n = program_.steps.size();
    for (size_t ci = 0; ci < n; ++ci) {
      const Step& check = program_.steps[ci];
      if (check.kind != Step::Kind::kLoopCheck) continue;
      int body = program_.FindStep(check.jump_to_id);
      if (body < 0) {
        Add(DefectCode::kV105, check,
            StringPrintf("loop-check jump target id %d does not exist",
                         check.jump_to_id));
        structurally_broken_ = true;
        continue;
      }
      if (static_cast<size_t>(body) > ci) {
        Add(DefectCode::kV105, check,
            StringPrintf("loop-check jump target (index %d) is after the "
                         "check (index %zu): a loop must jump backward",
                         body, ci));
        structurally_broken_ = true;
        continue;
      }
      // Find the matching init: the kInitLoop with this loop_id before the
      // body start.
      int init_idx = -1;
      for (int i = body - 1; i >= 0; --i) {
        const Step& s = program_.steps[i];
        if (s.kind == Step::Kind::kInitLoop && s.loop_id == check.loop_id) {
          init_idx = i;
          break;
        }
      }
      if (init_idx < 0) {
        Add(DefectCode::kV105, check,
            StringPrintf("no kInitLoop for loop %d precedes the body start",
                         check.loop_id));
        continue;
      }
      const Step& init = program_.steps[init_idx];
      if (init.jump_to_id != 0) {
        int skip = program_.FindStep(init.jump_to_id);
        if (skip < 0) {
          Add(DefectCode::kV105, init,
              StringPrintf("init-loop skip target id %d does not exist",
                           init.jump_to_id));
          structurally_broken_ = true;
        } else if (static_cast<size_t>(skip) != ci ||
                   program_.steps[skip].kind != Step::Kind::kLoopCheck) {
          Add(DefectCode::kV105, init,
              StringPrintf("init-loop skip target (step id %d) is not this "
                           "loop's kLoopCheck",
                           init.jump_to_id));
        }
      }
      CheckTermination(init, check, static_cast<size_t>(init_idx), ci);
      CheckHoistSoundness(static_cast<size_t>(init_idx), ci);
    }
  }

  /// Names (re)bound by the steps strictly between `lo` and `hi`.
  std::set<std::string> BodyBinds(size_t lo, size_t hi) const {
    std::set<std::string> out;
    for (size_t i = lo + 1; i < hi; ++i) {
      for (const std::string& b : ComputeStepIO(program_.steps[i]).binds) {
        out.insert(b);
      }
    }
    return out;
  }

  void CheckTermination(const Step& init, const Step& check, size_t init_idx,
                        size_t check_idx) {
    const LoopSpec& spec = check.loop;
    std::set<std::string> binds = BodyBinds(init_idx, check_idx);
    switch (spec.kind) {
      case LoopSpec::Kind::kIterations:
        break;  // counter-driven; always terminates
      case LoopSpec::Kind::kUpdates: {
        // Progress is recorded only by rename/merge steps tagged with this
        // loop's id; without one the cumulative count never moves.
        bool has_counter = false;
        for (size_t i = init_idx + 1; i < check_idx; ++i) {
          const Step& s = program_.steps[i];
          if ((s.kind == Step::Kind::kRename ||
               s.kind == Step::Kind::kMergeUpdate) &&
              s.loop_id == check.loop_id) {
            has_counter = true;
            break;
          }
        }
        if (!has_counter) {
          Add(DefectCode::kV106, check,
              StringPrintf("UPDATES loop %d has no body rename/merge step "
                           "recording update counts",
                           check.loop_id));
        }
        break;
      }
      case LoopSpec::Kind::kAny:
      case LoopSpec::Kind::kAll:
        if (!spec.cte_name.empty() &&
            binds.find(ToLower(spec.cte_name)) == binds.end()) {
          Add(DefectCode::kV106, check,
              StringPrintf("%s condition watches '%s' but no body step "
                           "rebinds it; the condition can never change",
                           spec.TypeName(), spec.cte_name.c_str()));
        }
        break;
      case LoopSpec::Kind::kDeltaLess:
        if (spec.n <= 0) {
          Add(DefectCode::kV106, check,
              StringPrintf("DELTA LESS THAN %lld can never hold (changed "
                           "row counts are non-negative)",
                           (long long)spec.n));
        }
        break;
      case LoopSpec::Kind::kWhileResultNonEmpty:
        if (!spec.watch_name.empty() &&
            binds.find(ToLower(spec.watch_name)) == binds.end()) {
          Add(DefectCode::kV106, check,
              StringPrintf("while-non-empty condition watches '%s' but no "
                           "body step rebinds it",
                           spec.watch_name.c_str()));
        }
        break;
    }
    // `init` currently needs no extra termination checks beyond payload
    // validation; keep the parameter for symmetry with future conditions.
    (void)init;
  }

  /// V107: a step hoisted before the loop (common-result, pushed-down R0
  /// filter) must not read a name the loop body rebinds — its value would be
  /// stale from iteration 2 on, contradicting loop-invariance.
  void CheckHoistSoundness(size_t init_idx, size_t check_idx) {
    std::set<std::string> body_binds = BodyBinds(init_idx, check_idx);
    if (body_binds.empty()) return;
    for (size_t i = 0; i < init_idx; ++i) {
      const Step& s = program_.steps[i];
      for (const std::string& r : ComputeStepIO(s).reads) {
        if (body_binds.find(r) != body_binds.end()) {
          Add(DefectCode::kV107, s,
              StringPrintf("pre-loop %s step reads '%s', which the loop "
                           "body (steps %d..%d) rebinds",
                           s.KindName(), r.c_str(),
                           program_.steps[init_idx].id,
                           program_.steps[check_idx].id));
        }
      }
    }
  }

  // ---- V108 + iterative-CTE metadata -----------------------------------

  void CheckIterativeCteFacts() {
    for (const IterativeCteInfo& info : program_.iterative_ctes) {
      int r0 = program_.FindStep(info.r0_step_id);
      int ri = program_.FindStep(info.ri_step_id);
      int init = program_.FindStep(info.init_step_id);
      int check = program_.FindStep(info.check_step_id);
      if (r0 < 0 || ri < 0 || init < 0 || check < 0) {
        report_->Add(DefectCode::kV110, -1,
                     StringPrintf("iterative CTE '%s' metadata references a "
                                  "missing step (r0=%d ri=%d init=%d "
                                  "check=%d)",
                                  info.cte_name.c_str(), info.r0_step_id,
                                  info.ri_step_id, info.init_step_id,
                                  info.check_step_id));
        continue;
      }
      if (!(r0 < init && init < ri && ri < check)) {
        report_->Add(DefectCode::kV110, -1,
                     StringPrintf("iterative CTE '%s' steps are out of "
                                  "order (r0@%d init@%d ri@%d check@%d)",
                                  info.cte_name.c_str(), r0, init, ri,
                                  check));
        continue;
      }
      if (!info.pushdown_legal) continue;
      CheckPushdownFact(info, program_.steps[ri], program_.steps[init]);
    }
  }

  /// Re-derives the Fig 10 pushdown-legality fact from the actual Ri plan.
  /// The fact licenses ApplyCtePredicatePushdown to move a Qf conjunct into
  /// R0; it is sound only if (a) termination is row-insensitive (a fixed
  /// iteration count), (b) Ri contains no row-sensitive or row-mixing
  /// operator (aggregate, join, set difference, limit) and reads no
  /// relation other than the CTE itself, and (c) every column the fact
  /// marks pass-through really is a verbatim copy of the same CTE column.
  void CheckPushdownFact(const IterativeCteInfo& info, const Step& ri,
                         const Step& init) {
    if (init.loop.kind != LoopSpec::Kind::kIterations) {
      Add(DefectCode::kV108, init,
          StringPrintf("pushdown_legal CTE '%s' has a %s-driven loop; only "
                       "fixed iteration counts are row-insensitive",
                       info.cte_name.c_str(), init.loop.TypeName()));
    }
    if (ri.plan == nullptr) return;  // V110 already fired
    const LogicalOp& plan = *ri.plan;
    for (LogicalOpKind kind :
         {LogicalOpKind::kJoin, LogicalOpKind::kAggregate,
          LogicalOpKind::kExcept, LogicalOpKind::kIntersect,
          LogicalOpKind::kLimit}) {
      if (PlanContainsKind(plan, kind)) {
        Add(DefectCode::kV108, ri,
            StringPrintf("pushdown_legal CTE '%s' has a %s in its Ri plan",
                         info.cte_name.c_str(), LogicalOpKindName(kind)));
      }
    }
    const LogicalOp* foreign = FindForeignScan(plan, info.cte_name);
    if (foreign != nullptr) {
      Add(DefectCode::kV108, ri,
          StringPrintf("pushdown_legal CTE '%s' reads relation '%s' in Ri; "
                       "legality requires a single self-scan",
                       info.cte_name.c_str(), foreign->scan_name.c_str()));
    }
    for (size_t i = 0; i < info.pass_through.size(); ++i) {
      if (!info.pass_through[i]) continue;
      if (!ColumnPassesThrough(plan, i, info.cte_name)) {
        Add(DefectCode::kV108, ri,
            StringPrintf("pushdown fact marks column %zu of CTE '%s' as "
                         "pass-through but the Ri plan does not copy it "
                         "verbatim",
                         i, info.cte_name.c_str()));
      }
    }
  }

  // ---- forward dataflow: V101 / V102 / V103 / V008 ---------------------

  /// Applies `step` to `state`; diagnoses into `report` when non-null.
  AbstractState Transfer(const AbstractState& in, const Step& step,
                         VerifyReport* report) {
    AbstractState out = in;
    StepIO io = ComputeStepIO(step);
    for (const std::string& name : io.reads) {
      NameInfo info = GetOrDefault(out, name);
      if (report != nullptr && info.definite) {
        if (info.state == NameInfo::S::kUnbound) {
          std::string why =
              info.event_step >= 0
                  ? StringPrintf("removed at step %d", info.event_step)
                  : "never bound";
          Add(DefectCode::kV101, step,
              StringPrintf("%s reads result '%s', which is unbound on every "
                           "path (%s)",
                           step.KindName(), name.c_str(), why.c_str()));
        } else if (info.state == NameInfo::S::kMoved) {
          Add(DefectCode::kV102, step,
              StringPrintf("%s reads result '%s' after step %d consumed it",
                           step.KindName(), name.c_str(), info.event_step));
        }
      }
      info.unread = false;
      out[name] = info;
    }
    if (report != nullptr && step.plan != nullptr) {
      CheckResultScanSchemas(in, step, report);
    }
    if (report != nullptr) {
      CheckKeyColumns(in, step);
    }
    for (const std::string& name : io.moves) {
      NameInfo info = GetOrDefault(out, name);
      info.state = NameInfo::S::kMoved;
      info.definite = true;
      info.unread = false;
      info.event_step = step.id;
      info.has_schema = false;
      info.schema = Schema();
      out[name] = info;
    }
    for (const std::string& name : io.removes) {
      NameInfo info;
      info.state = NameInfo::S::kUnbound;
      info.definite = true;
      info.event_step = step.id;
      out[name] = info;
    }
    for (const std::string& name : io.binds) {
      // Look up `out`, not `in`: a step that reads its own target before
      // rebinding it (merge/append/dedupe) is itself the reader of the
      // prior binding, so that binding is not a dead store.
      NameInfo prev = GetOrDefault(out, name);
      if (report != nullptr && prev.definite &&
          prev.state == NameInfo::S::kBound && prev.unread &&
          IsDeadStoreRelevant(step)) {
        Add(DefectCode::kV103, step,
            StringPrintf("%s rebinds result '%s' but the value bound at "
                         "step %d was never read",
                         step.KindName(), name.c_str(), prev.event_step));
      }
      NameInfo info;
      info.state = NameInfo::S::kBound;
      info.definite = true;
      info.unread = true;
      info.event_step = step.id;
      ResolveBoundSchema(in, step, name, &info);
      out[name] = info;
    }
    return out;
  }

  /// A loop-tagged rename is the loop-carried update of its CTE: on the
  /// 0-iteration path the previous binding *is* read downstream, so
  /// overwriting it inside the body is not a dead store even when the body
  /// itself never reads the CTE (a legal, if degenerate, query shape).
  static bool IsDeadStoreRelevant(const Step& step) {
    return !(step.kind == Step::Kind::kRename && step.loop_id != 0);
  }

  /// Schema the binding produced by `step` carries, when statically known.
  void ResolveBoundSchema(const AbstractState& in, const Step& step,
                          const std::string& name, NameInfo* info) {
    (void)name;
    switch (step.kind) {
      case Step::Kind::kMaterialize:
        if (step.plan != nullptr) {
          info->has_schema = true;
          info->schema = step.plan->output_schema;
        }
        break;
      case Step::Kind::kRename:
      case Step::Kind::kCopyResult:
      case Step::Kind::kComputeDelta: {
        NameInfo src = GetOrDefault(in, ToLower(step.source));
        if (src.definite && src.state == NameInfo::S::kBound &&
            src.has_schema) {
          info->has_schema = true;
          info->schema = src.schema;
        }
        break;
      }
      case Step::Kind::kMergeUpdate:
      case Step::Kind::kAppendResult:
      case Step::Kind::kDedupeResult: {
        NameInfo prev = GetOrDefault(in, ToLower(step.target));
        if (prev.definite && prev.state == NameInfo::S::kBound &&
            prev.has_schema) {
          info->has_schema = true;
          info->schema = prev.schema;
        }
        break;
      }
      default:
        break;
    }
  }

  /// V008: a plan's result-scan schema must agree with what the dataflow
  /// knows is bound under that name at this point.
  void CheckResultScanSchemas(const AbstractState& in, const Step& step,
                              VerifyReport* report) {
    std::vector<const LogicalOp*> scans;
    CollectResultScans(*step.plan, &scans);
    for (const LogicalOp* scan : scans) {
      NameInfo info = GetOrDefault(in, ToLower(scan->scan_name));
      if (!info.definite || info.state != NameInfo::S::kBound ||
          !info.has_schema) {
        continue;
      }
      if (!info.schema.TypesCompatible(scan->output_schema)) {
        report->Add(DefectCode::kV008, step.id,
                    StringPrintf("result scan of '%s' declares schema %s "
                                 "but the binding from step %d has %s",
                                 scan->scan_name.c_str(),
                                 scan->output_schema.ToString().c_str(),
                                 info.event_step,
                                 info.schema.ToString().c_str()),
                    PlanExcerpt(*scan));
      }
    }
  }

  /// V003/V008 for the key-addressed registry steps: the key ordinal must
  /// exist in the addressed binding, and merge/append/dedupe pairs must be
  /// type-compatible.
  void CheckKeyColumns(const AbstractState& in, const Step& step) {
    bool keyed = step.kind == Step::Kind::kMergeUpdate ||
                 step.kind == Step::Kind::kDedupeResult ||
                 step.kind == Step::Kind::kComputeDelta;
    bool paired = keyed || step.kind == Step::Kind::kAppendResult;
    if (!paired) return;
    std::string key_holder = step.kind == Step::Kind::kComputeDelta
                                 ? ToLower(step.source)
                                 : ToLower(step.target);
    NameInfo holder = GetOrDefault(in, key_holder);
    if (keyed && holder.definite && holder.state == NameInfo::S::kBound &&
        holder.has_schema &&
        step.key_col >= holder.schema.num_columns()) {
      Add(DefectCode::kV003, step,
          StringPrintf("%s key column #%zu out of bounds for '%s' %s",
                       step.KindName(), step.key_col, key_holder.c_str(),
                       holder.schema.ToString().c_str()));
    }
    if (step.kind == Step::Kind::kMergeUpdate ||
        step.kind == Step::Kind::kAppendResult ||
        step.kind == Step::Kind::kDedupeResult) {
      NameInfo src = GetOrDefault(in, ToLower(step.source));
      NameInfo dst = GetOrDefault(in, ToLower(step.target));
      if (src.definite && dst.definite &&
          src.state == NameInfo::S::kBound &&
          dst.state == NameInfo::S::kBound && src.has_schema &&
          dst.has_schema && !dst.schema.TypesCompatible(src.schema)) {
        Add(DefectCode::kV008, step,
            StringPrintf("%s source '%s' %s is incompatible with target "
                         "'%s' %s",
                         step.KindName(), step.source.c_str(),
                         src.schema.ToString().c_str(), step.target.c_str(),
                         dst.schema.ToString().c_str()));
      }
    }
  }

  void RunDataflow() {
    size_t n = program_.steps.size();
    if (n == 0) return;
    std::vector<AbstractState> in(n);
    // Results the caller binds before execution (materialized-view CTE
    // overlays) are live at entry: bound, with their known schema.
    for (const auto& [name, schema] : program_.seeded_results) {
      NameInfo info;
      info.state = NameInfo::S::kBound;
      info.has_schema = true;
      info.schema = schema;
      in[0][ToLower(name)] = info;
    }
    std::vector<bool> reached(n, false);
    reached[0] = true;
    std::deque<size_t> work{0};
    size_t budget = n * 200 + 64;  // lattice is finite; this never binds
    while (!work.empty() && budget-- > 0) {
      size_t i = work.front();
      work.pop_front();
      AbstractState out = Transfer(in[i], program_.steps[i], nullptr);
      for (size_t s : Successors(i)) {
        if (!reached[s]) {
          reached[s] = true;
          in[s] = out;
          work.push_back(s);
        } else {
          AbstractState merged = MeetStates(in[s], out);
          if (!StatesEqual(merged, in[s])) {
            in[s] = std::move(merged);
            work.push_back(s);
          }
        }
      }
    }
    // Diagnose on the converged states only.
    for (size_t i = 0; i < n; ++i) {
      if (reached[i]) Transfer(in[i], program_.steps[i], report_);
    }
  }

  // ---- backward liveness: V104 -----------------------------------------

  void RunLiveness() {
    size_t n = program_.steps.size();
    if (n == 0) return;
    std::vector<StepIO> io(n);
    std::vector<std::set<std::string>> live_in(n);
    for (size_t i = 0; i < n; ++i) io[i] = ComputeStepIO(program_.steps[i]);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = n; i-- > 0;) {
        std::set<std::string> out;
        for (size_t s : Successors(i)) {
          out.insert(live_in[s].begin(), live_in[s].end());
        }
        std::set<std::string> li = out;
        for (const std::string& d : io[i].binds) li.erase(d);
        for (const std::string& d : io[i].moves) li.erase(d);
        for (const std::string& d : io[i].removes) li.erase(d);
        for (const std::string& u : io[i].reads) li.insert(u);
        if (li != live_in[i]) {
          live_in[i] = std::move(li);
          changed = true;
        }
      }
    }
    // A loop-body materialization whose output is dead right after the step
    // is work thrown away every iteration.
    for (size_t ci = 0; ci < n; ++ci) {
      const Step& check = program_.steps[ci];
      if (check.kind != Step::Kind::kLoopCheck) continue;
      int body = program_.FindStep(check.jump_to_id);
      if (body < 0) continue;
      for (size_t i = static_cast<size_t>(body); i < ci; ++i) {
        const Step& s = program_.steps[i];
        if (s.kind != Step::Kind::kMaterialize &&
            s.kind != Step::Kind::kComputeDelta &&
            s.kind != Step::Kind::kCopyResult) {
          continue;
        }
        std::set<std::string> live_out;
        for (size_t succ : Successors(i)) {
          live_out.insert(live_in[succ].begin(), live_in[succ].end());
        }
        for (const std::string& b : io[i].binds) {
          if (live_out.find(b) == live_out.end()) {
            Add(DefectCode::kV104, s,
                StringPrintf("loop-body %s binds '%s' but no path reads it "
                             "before the value is overwritten or the "
                             "program ends",
                             s.KindName(), b.c_str()));
          }
        }
      }
    }
  }

  const Program& program_;
  const VerifyContext& ctx_;
  VerifyReport* report_;
  bool structurally_broken_ = false;
};

}  // namespace

std::string StepExcerpt(const Step& step) {
  std::string out = StringPrintf("step %d %s", step.id, step.KindName());
  if (!step.source.empty()) out += " source='" + step.source + "'";
  if (!step.target.empty()) out += " target='" + step.target + "'";
  if (step.kind == Step::Kind::kInitLoop ||
      step.kind == Step::Kind::kLoopCheck) {
    out += " " + step.loop.ToString();
  }
  if (!step.comment.empty()) out += "  -- " + step.comment;
  return out;
}

void CheckProgram(const Program& program, const VerifyContext& ctx,
                  VerifyReport* report) {
  ProgramChecker(program, ctx, report).Check();
}

}  // namespace internal
}  // namespace verify
}  // namespace dbspinner
