#include "verify/verify.h"

#include <cstdio>

#include "common/string_util.h"
#include "verify/verify_internal.h"

namespace dbspinner {
namespace verify {

namespace {

struct DefectInfo {
  DefectCode code;
  const char* name;
  const char* description;
};

constexpr DefectInfo kDefects[] = {
    {DefectCode::kV001, "V001", "operator has the wrong number of children"},
    {DefectCode::kV002, "V002",
     "output schema inconsistent with children or expressions"},
    {DefectCode::kV003, "V003", "column ordinal out of bounds"},
    {DefectCode::kV004, "V004", "predicate or condition is not boolean"},
    {DefectCode::kV005, "V005",
     "join condition compares incompatible types"},
    {DefectCode::kV006, "V006", "malformed aggregate specification"},
    {DefectCode::kV007, "V007",
     "set-operation child incompatible with output schema"},
    {DefectCode::kV008, "V008",
     "scan schema disagrees with catalog table or bound result"},
    {DefectCode::kV009, "V009", "VALUES row shape or cell type mismatch"},
    {DefectCode::kV010, "V010", "invalid LIMIT or OFFSET constant"},
    {DefectCode::kV011, "V011", "malformed delta-restrict operator"},
    {DefectCode::kV101, "V101",
     "read of a result that is unbound on every path"},
    {DefectCode::kV102, "V102",
     "read of a result after a rename or merge consumed it"},
    {DefectCode::kV103, "V103",
     "result rebound without an intervening read (dead store)"},
    {DefectCode::kV104, "V104",
     "loop-body materialization never consumed before loop exit"},
    {DefectCode::kV105, "V105",
     "loop jump target missing or outside the legal range"},
    {DefectCode::kV106, "V106",
     "statically non-terminating loop: body cannot change the termination "
     "state"},
    {DefectCode::kV107, "V107",
     "pre-loop (hoisted) step reads a result rebound inside the loop body"},
    {DefectCode::kV108, "V108",
     "pushdown-legality fact contradicted by the Ri plan"},
    {DefectCode::kV109, "V109",
     "step aliasing or retry-idempotency model violation"},
    {DefectCode::kV110, "V110", "malformed step payload"},
    {DefectCode::kV111, "V111", "final step misplaced"},
    {DefectCode::kV201, "V201",
     "physical operator has the wrong number of children"},
    {DefectCode::kV202, "V202",
     "physical plan disagrees with the step's logical plan"},
    {DefectCode::kV203, "V203", "pipeline shape violation"},
    {DefectCode::kV204, "V204",
     "chunk schema inconsistency across a fused kernel chain"},
    {DefectCode::kV205, "V205",
     "broadcast-probe fusion legality violation"},
    {DefectCode::kV206, "V206", "unsound fused pre-aggregation"},
    {DefectCode::kV207, "V207",
     "morsel-safety violation: pipeline role disagrees with operator type"},
    {DefectCode::kV208, "V208",
     "physical scan disagrees with the catalog table"},
};

const DefectInfo& InfoFor(DefectCode code) {
  for (const DefectInfo& info : kDefects) {
    if (info.code == code) return info;
  }
  return kDefects[0];  // unreachable for valid codes
}

}  // namespace

const char* DefectCodeName(DefectCode code) { return InfoFor(code).name; }

const char* DefectCodeDescription(DefectCode code) {
  return InfoFor(code).description;
}

const std::vector<DefectCode>& AllDefectCodes() {
  static const std::vector<DefectCode>* codes = [] {
    auto* v = new std::vector<DefectCode>();
    for (const DefectInfo& info : kDefects) v->push_back(info.code);
    return v;
  }();
  return *codes;
}

std::string VerifyDiagnostic::ToString() const {
  std::string out = DefectCodeName(code);
  if (step_id >= 0) {
    out += StringPrintf(" [step %d]", step_id);
  }
  out += " ";
  out += detail;
  if (!excerpt.empty()) {
    out += "\n    | ";
    for (char c : excerpt) {
      out += c;
      if (c == '\n') out += "    | ";
    }
  }
  return out;
}

void VerifyReport::Add(DefectCode code, int step_id, std::string detail,
                       std::string excerpt) {
  VerifyDiagnostic d;
  d.code = code;
  d.step_id = step_id;
  d.detail = std::move(detail);
  d.excerpt = std::move(excerpt);
  // Drop trailing newlines from plan excerpts so rendering stays compact.
  while (!d.excerpt.empty() && d.excerpt.back() == '\n') d.excerpt.pop_back();
  diagnostics.push_back(std::move(d));
}

std::string VerifyReport::ToString() const {
  std::string out = "verify";
  if (!phase.empty()) out += " (" + phase + ")";
  if (diagnostics.empty()) {
    out += ": ok\n";
    return out;
  }
  out += StringPrintf(": %zu diagnostic%s\n", diagnostics.size(),
                      diagnostics.size() == 1 ? "" : "s");
  for (const VerifyDiagnostic& d : diagnostics) {
    out += "  " + d.ToString() + "\n";
  }
  return out;
}

void VerifyPlanInto(const LogicalOp& plan, const VerifyContext& ctx,
                    int step_id, VerifyReport* report) {
  internal::CheckPlan(plan, ctx, step_id, report);
}

VerifyReport VerifyPlan(const LogicalOp& plan, const VerifyContext& ctx) {
  VerifyReport report;
  internal::CheckPlan(plan, ctx, -1, &report);
  return report;
}

VerifyReport VerifyPhysicalPlan(const PhysicalOp& plan,
                                const LogicalOp* logical,
                                const VerifyContext& ctx) {
  VerifyReport report;
  internal::CheckPhysicalPlan(plan, logical, ctx, -1, &report);
  return report;
}

VerifyReport VerifyProgram(const Program& program, const VerifyContext& ctx) {
  VerifyReport report;
  for (const Step& step : program.steps) {
    if (step.plan != nullptr) {
      internal::CheckPlan(*step.plan, ctx, step.id, &report);
    }
    // The physical/pipeline analysis (V2xx) runs on every step that already
    // carries a compiled plan, independent of require_physical — so the
    // pre-compilation stages stay V0xx/V1xx-only and the post-compilation
    // stage (plus EXPLAIN and the fuzz oracle) covers all three IRs.
    if (step.physical != nullptr) {
      internal::CheckPhysicalStep(step, ctx, &report);
    }
  }
  internal::CheckProgram(program, ctx, &report);
  return report;
}

Status EnforceOrCount(const VerifyReport& report, bool enforce,
                      int64_t* counter) {
  if (report.ok()) return Status::OK();
  if (counter != nullptr) {
    *counter += static_cast<int64_t>(report.diagnostics.size());
  }
  if (enforce) {
    return Status::Internal("plan verifier failed: " + report.ToString());
  }
  std::fputs(("dbspinner: " + report.ToString()).c_str(), stderr);
  return Status::OK();
}

}  // namespace verify
}  // namespace dbspinner
