// Physical-plan & fused-pipeline checker: V201..V208 (DESIGN.md §13).
//
// Validates every compiled Step::physical tree against the contracts the
// morsel pipeline executor (exec/pipeline.cc) compiles fused kernels
// against. The legality facts checked here are re-derived independently of
// the executor: the checker walks the physical tree with its own role/type
// tables and re-evaluates broadcast-probe fusion through the planner's
// shared predicate (exec/physical_planner.h), so a planner or rewrite bug
// that hands the kernels an inconsistent tree fails at plan time with a
// stable code instead of corrupting chunks (or static_cast-ing to the wrong
// operator type) at run time. Like the logical checker, type comparisons
// follow the engine's positional-type discipline and stay lenient about
// kNull where expressions legally carry the NULL wildcard.

#include <cmath>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/types.h"
#include "exec/physical_plan.h"
#include "exec/physical_planner.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"
#include "verify/verify_internal.h"

namespace dbspinner {
namespace verify {
namespace internal {

namespace {

constexpr size_t kExcerptLimit = 512;

/// Expected child count for the known concrete operator classes, keyed by
/// PhysicalOp::Name(). Returns -1 for operator types the checker does not
/// know (custom / future operators): their arity is not checkable, but
/// their pipeline-role contract still is (V203/V207).
int ExpectedChildren(const std::string& name) {
  if (name == "Scan" || name == "Values") return 0;
  if (name == "Filter" || name == "Project" || name == "HashAggregate" ||
      name == "Distinct" || name == "Sort" || name == "Limit" ||
      name == "DeltaRestrict") {
    return 1;
  }
  if (name == "HashJoin" || name == "NestedLoopJoin" || name == "UnionAll" ||
      name == "Except" || name == "Intersect") {
    return 2;
  }
  return -1;
}

/// The concrete class each fusible / sink pipeline role is compiled
/// against. CompileStages and RunAggregatePipeline static_cast on the role,
/// so an operator claiming one of these roles under a different type is a
/// memory-safety bug, not just a planning bug (V207). Roles outside this
/// table (kBreaker) carry no fusion contract.
const char* RequiredNameForRole(PipelineRole role) {
  switch (role) {
    case PipelineRole::kFilter:
      return "Filter";
    case PipelineRole::kProject:
      return "Project";
    case PipelineRole::kHashProbe:
      return "HashJoin";
    case PipelineRole::kDeltaRestrict:
      return "DeltaRestrict";
    case PipelineRole::kPreAggregate:
      return "HashAggregate";
    default:
      return nullptr;
  }
}

bool IsStreamingRole(PipelineRole role) {
  return role == PipelineRole::kFilter || role == PipelineRole::kProject ||
         role == PipelineRole::kHashProbe ||
         role == PipelineRole::kDeltaRestrict;
}

/// Lenient per-column type agreement (kNull is the wildcard the constant
/// folder and NULL literals produce).
bool TypeAgrees(TypeId have, TypeId want) {
  return have == want || have == TypeId::kNull || want == TypeId::kNull;
}

/// Exact positional type equality (names ignored; rewrites relabel freely).
bool SameTypes(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).type != b.column(i).type) return false;
  }
  return true;
}

/// Physical operator names a logical kind may legally compile to.
bool KindMatchesPhysical(LogicalOpKind kind, const std::string& name) {
  switch (kind) {
    case LogicalOpKind::kScan:
      return name == "Scan";
    case LogicalOpKind::kValues:
      return name == "Values";
    case LogicalOpKind::kFilter:
      return name == "Filter";
    case LogicalOpKind::kProject:
      return name == "Project";
    case LogicalOpKind::kJoin:
      return name == "HashJoin" || name == "NestedLoopJoin";
    case LogicalOpKind::kAggregate:
      return name == "HashAggregate";
    case LogicalOpKind::kUnionAll:
      return name == "UnionAll";
    case LogicalOpKind::kExcept:
      return name == "Except";
    case LogicalOpKind::kIntersect:
      return name == "Intersect";
    case LogicalOpKind::kDistinct:
      return name == "Distinct";
    case LogicalOpKind::kSort:
      return name == "Sort";
    case LogicalOpKind::kLimit:
      return name == "Limit";
    case LogicalOpKind::kDeltaRestrict:
      return name == "DeltaRestrict";
  }
  return false;
}

class PipelineChecker {
 public:
  PipelineChecker(const VerifyContext& ctx, int step_id, VerifyReport* report)
      : ctx_(ctx), step_id_(step_id), report_(report) {}

  void Check(const PhysicalOp& op) {
    for (const PhysicalOpPtr& child : op.children()) {
      if (child != nullptr) Check(*child);
    }
    const std::string name = op.Name();
    int expected = ExpectedChildren(name);
    size_t present = 0;
    for (const PhysicalOpPtr& child : op.children()) {
      if (child != nullptr) ++present;
    }
    if (present != op.children().size() ||
        (expected >= 0 && present != static_cast<size_t>(expected))) {
      Add(DefectCode::kV201, op,
          StringPrintf("%s has %zu child(ren), expected %d", name.c_str(),
                       present, expected));
      return;  // node-local checks below assume the arity holds
    }
    CheckPipelineShape(op);
    CheckRoleTypeAgreement(op);
    if (name == "Scan") {
      CheckScan(static_cast<const PhysicalScan&>(op));
    } else if (name == "Filter") {
      CheckFilter(static_cast<const PhysicalFilter&>(op));
    } else if (name == "Project") {
      CheckProject(static_cast<const PhysicalProject&>(op));
    } else if (name == "HashJoin") {
      CheckHashJoin(static_cast<const PhysicalHashJoin&>(op));
    } else if (name == "DeltaRestrict") {
      CheckDeltaRestrict(static_cast<const PhysicalDeltaRestrict&>(op));
    } else if (name == "HashAggregate") {
      CheckHashAggregate(static_cast<const PhysicalHashAggregate&>(op));
    }
  }

  /// Paired physical↔logical walk (V202). The physical planner compiles
  /// logical trees strictly 1:1 (exec/physical_planner.cc), so any shape,
  /// operator-mapping or per-node schema divergence means a post-planning
  /// mutation broke the agreement.
  void CheckAgainstLogical(const PhysicalOp& phys, const LogicalOp& logical) {
    if (!KindMatchesPhysical(logical.kind, phys.Name())) {
      Add(DefectCode::kV202, phys,
          StringPrintf("physical %s compiled from logical %s", phys.Name(),
                       LogicalOpKindName(logical.kind)));
      return;
    }
    if (!SameTypes(phys.output_schema(), logical.output_schema)) {
      Add(DefectCode::kV202, phys,
          StringPrintf("physical %s output schema %s disagrees with its "
                       "logical node's %s",
                       phys.Name(), phys.output_schema().ToString().c_str(),
                       logical.output_schema.ToString().c_str()));
    }
    if (phys.children().size() != logical.children.size()) {
      Add(DefectCode::kV202, phys,
          StringPrintf("physical %s has %zu child(ren), its logical node "
                       "has %zu",
                       phys.Name(), phys.children().size(),
                       logical.children.size()));
      return;
    }
    for (size_t i = 0; i < phys.children().size(); ++i) {
      if (phys.children()[i] != nullptr && logical.children[i] != nullptr) {
        CheckAgainstLogical(*phys.children()[i], *logical.children[i]);
      }
    }
  }

 private:
  void Add(DefectCode code, const PhysicalOp& op, std::string detail) {
    report_->Add(code, step_id_, std::move(detail), PhysicalExcerpt(op));
  }

  /// V204 for every column reference in `expr` against `width` input
  /// columns — the chunk kernels index the stage's input chunk by ordinal,
  /// so an out-of-bounds reference reads past the chunk's columns.
  void CheckRefs(const BoundExpr& expr, size_t width, const PhysicalOp& op,
                 const char* what) {
    if (expr.RefsWithin(0, width)) return;
    std::vector<size_t> refs;
    expr.CollectColumnRefs(&refs);
    for (size_t r : refs) {
      if (r >= width) {
        Add(DefectCode::kV204, op,
            StringPrintf("%s in %s references column #%zu but the stage's "
                         "input chunk has %zu column(s)",
                         what, op.Name(), r, width));
        return;  // one diagnostic per expression is enough
      }
    }
  }

  /// V203: the pipeline structural contract — a chain streams from exactly
  /// one source, so sources must be leaves and every streaming (or sink)
  /// stage needs an upstream child to stream from. For the known operator
  /// classes this coincides with their arity (V201); it fires on its own
  /// for custom operators whose arity the checker cannot know.
  void CheckPipelineShape(const PhysicalOp& op) {
    PipelineRole role = op.pipeline_role();
    if (role == PipelineRole::kSource && !op.children().empty()) {
      Add(DefectCode::kV203, op,
          StringPrintf("pipeline source %s is not a leaf (%zu child(ren))",
                       op.Name(), op.children().size()));
    }
    if ((IsStreamingRole(role) || role == PipelineRole::kPreAggregate) &&
        op.children().empty()) {
      Add(DefectCode::kV203, op,
          StringPrintf("pipeline stage %s has no upstream input to stream "
                       "from",
                       op.Name()));
    }
  }

  /// V207: CompileStages / RunAggregatePipeline static_cast each fused
  /// stage to the concrete class its role promises; those classes are the
  /// closed set audited to keep all mutable execution state in per-worker
  /// LocalStats / GroupedAggregator partials. An operator claiming a fused
  /// role under any other type would be cast to the wrong class and could
  /// carry cross-morsel mutable state the workers stomp concurrently.
  void CheckRoleTypeAgreement(const PhysicalOp& op) {
    const char* required = RequiredNameForRole(op.pipeline_role());
    if (required == nullptr) return;
    if (std::string(required) != op.Name()) {
      Add(DefectCode::kV207, op,
          StringPrintf("operator %s claims a fused pipeline role reserved "
                       "for %s; fused stages must be %s to keep mutable "
                       "state per-worker",
                       op.Name(), required, required));
    }
  }

  void CheckScan(const PhysicalScan& op) {
    if (op.scan_name().empty()) {
      Add(DefectCode::kV208, op, "physical scan has an empty relation name");
      return;
    }
    if (!op.from_catalog() || ctx_.catalog == nullptr) {
      return;  // result-scan schemas are checked by the program dataflow
    }
    // Catalog::Get has no const overload; the lookup is read-only.
    auto entry = const_cast<Catalog*>(ctx_.catalog)->Get(op.scan_name());
    if (!entry.ok()) {
      Add(DefectCode::kV208, op,
          StringPrintf("physical scan of unknown catalog table '%s'",
                       op.scan_name().c_str()));
      return;
    }
    const Schema& actual = (*entry)->table->schema();
    if (!SameTypes(op.output_schema(), actual)) {
      Add(DefectCode::kV208, op,
          StringPrintf("physical scan schema %s disagrees with catalog "
                       "table '%s' %s",
                       op.output_schema().ToString().c_str(),
                       op.scan_name().c_str(), actual.ToString().c_str()));
    }
  }

  void CheckFilter(const PhysicalFilter& op) {
    const Schema& in = op.children()[0]->output_schema();
    if (!SameTypes(op.output_schema(), in)) {
      Add(DefectCode::kV204, op,
          StringPrintf("filter stage output schema %s differs from its "
                       "input chunk schema %s",
                       op.output_schema().ToString().c_str(),
                       in.ToString().c_str()));
    }
    if (!TypeAgrees(op.predicate().type, TypeId::kBool)) {
      Add(DefectCode::kV204, op,
          StringPrintf("filter kernel predicate has type %s, expected BOOL",
                       TypeName(op.predicate().type)));
    }
    CheckRefs(op.predicate(), in.num_columns(), op, "predicate");
  }

  void CheckProject(const PhysicalProject& op) {
    const Schema& in = op.children()[0]->output_schema();
    if (op.exprs().size() != op.output_schema().num_columns()) {
      Add(DefectCode::kV204, op,
          StringPrintf("projection kernel has %zu expression(s) for %zu "
                       "output column(s)",
                       op.exprs().size(), op.output_schema().num_columns()));
      return;
    }
    for (size_t i = 0; i < op.exprs().size(); ++i) {
      if (op.exprs()[i] == nullptr) {
        Add(DefectCode::kV204, op,
            StringPrintf("projection expression %zu is null", i));
        return;
      }
      if (!TypeAgrees(op.exprs()[i]->type, op.output_schema().column(i).type)) {
        Add(DefectCode::kV204, op,
            StringPrintf("projection expression %zu has type %s, output "
                         "column '%s' declares %s",
                         i, TypeName(op.exprs()[i]->type),
                         op.output_schema().column(i).name.c_str(),
                         TypeName(op.output_schema().column(i).type)));
      }
      CheckRefs(*op.exprs()[i], in.num_columns(), op, "projection");
    }
  }

  void CheckHashJoin(const PhysicalHashJoin& op) {
    const Schema& left = op.children()[0]->output_schema();
    const Schema& right = op.children()[1]->output_schema();
    size_t width = left.num_columns() + right.num_columns();
    if (op.output_schema().num_columns() != width) {
      Add(DefectCode::kV204, op,
          StringPrintf("probe output has %zu column(s), [left ++ right] "
                       "provides %zu",
                       op.output_schema().num_columns(), width));
    } else {
      for (size_t i = 0; i < width; ++i) {
        TypeId want = i < left.num_columns()
                          ? left.column(i).type
                          : right.column(i - left.num_columns()).type;
        if (op.output_schema().column(i).type != want) {
          Add(DefectCode::kV204, op,
              StringPrintf("probe output column %zu has type %s, the "
                           "gathered input column has %s",
                           i, TypeName(op.output_schema().column(i).type),
                           TypeName(want)));
          break;
        }
      }
    }
    if (op.left_keys().size() != op.right_keys().size() ||
        op.left_keys().empty()) {
      Add(DefectCode::kV204, op,
          StringPrintf("hash join has %zu probe key(s) against %zu build "
                       "key(s)",
                       op.left_keys().size(), op.right_keys().size()));
    } else {
      for (size_t i = 0; i < op.left_keys().size(); ++i) {
        size_t lk = op.left_keys()[i];
        size_t rk = op.right_keys()[i];
        if (lk >= left.num_columns() || rk >= right.num_columns()) {
          Add(DefectCode::kV204, op,
              StringPrintf("join key pair %zu (#%zu, #%zu) out of bounds "
                           "for inputs of %zu and %zu column(s)",
                           i, lk, rk, left.num_columns(),
                           right.num_columns()));
          break;
        }
        if (!TypeAgrees(left.column(lk).type, right.column(rk).type)) {
          Add(DefectCode::kV204, op,
              StringPrintf("join key pair %zu compares %s against %s", i,
                           TypeName(left.column(lk).type),
                           TypeName(right.column(rk).type)));
          break;
        }
      }
    }
    if (op.residual() != nullptr) {
      if (!TypeAgrees(op.residual()->type, TypeId::kBool)) {
        Add(DefectCode::kV204, op,
            StringPrintf("join residual has type %s, expected BOOL",
                         TypeName(op.residual()->type)));
      }
      CheckRefs(*op.residual(), width, op, "join residual");
    }
    CheckBroadcastLegality(op);
  }

  /// V205: broadcast-probe fusion legality, re-derived through the
  /// planner's shared predicate (exec/physical_planner.h). The estimate
  /// annotation is the sole input to the fuse-or-shuffle decision, so it
  /// must be decidable: a NaN or infinite estimate makes
  /// BroadcastFusionLegal unanswerable and the probe's execution mode
  /// (shared broadcast hash vs partitioned shuffle) arbitrary. Negative
  /// estimates are the documented "compiled without a catalog" sentinel
  /// and keep the probe a breaker — legal. When options are available the
  /// checker additionally re-runs the predicate and asserts the invariant
  /// the executor relies on: a probe it would fuse (sharing one build hash
  /// across every worker) has a known estimate within the broadcast
  /// budget.
  void CheckBroadcastLegality(const PhysicalHashJoin& op) {
    double est = op.build_rows_estimate();
    if (std::isnan(est) || (std::isinf(est) && est > 0)) {
      Add(DefectCode::kV205, op,
          StringPrintf("build-rows estimate %f is not a decidable fusion "
                       "input (expected a finite estimate or the negative "
                       "no-catalog sentinel)",
                       est));
      return;
    }
    if (ctx_.options == nullptr || ctx_.options->num_workers <= 1 ||
        !ctx_.options->optimizer.vectorized_exec) {
      return;  // serial / legacy execution never broadcasts the build
    }
    if (BroadcastFusionLegal(est, ctx_.options->broadcast_build_rows) &&
        !(est >= 0.0 &&
          est <= static_cast<double>(ctx_.options->broadcast_build_rows))) {
      Add(DefectCode::kV205, op,
          StringPrintf("probe would fuse with build estimate %f outside "
                       "the broadcast budget %zu",
                       est, ctx_.options->broadcast_build_rows));
    }
  }

  /// V206: the fused pre-aggregation sink is exact only because every
  /// AggState is a commutative monoid under MergeFrom and DISTINCT defers
  /// its updates to Finalize through a DistinctFilter over the argument
  /// values (exec/hash_aggregate.cc). Both facts are per-spec properties
  /// the checker can re-verify: the kind must be one of the audited
  /// merge-commutative kinds, COUNT(*) has no argument to dedupe (so it
  /// has no DISTINCT deferral path), and argument kinds need a bounded
  /// argument expression.
  void CheckHashAggregate(const PhysicalHashAggregate& op) {
    const Schema& in = op.children()[0]->output_schema();
    size_t want = op.group_exprs().size() + op.aggregates().size();
    if (op.output_schema().num_columns() != want) {
      Add(DefectCode::kV206, op,
          StringPrintf("aggregate sink output has %zu column(s) for %zu "
                       "group(s) + %zu aggregate(s)",
                       op.output_schema().num_columns(),
                       op.group_exprs().size(), op.aggregates().size()));
      return;
    }
    for (size_t i = 0; i < op.group_exprs().size(); ++i) {
      if (op.group_exprs()[i] == nullptr) {
        Add(DefectCode::kV206, op,
            StringPrintf("group expression %zu is null", i));
        return;
      }
      CheckRefs(*op.group_exprs()[i], in.num_columns(), op,
                "group expression");
    }
    for (size_t i = 0; i < op.aggregates().size(); ++i) {
      const AggregateSpec& spec = op.aggregates()[i];
      switch (spec.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
        case AggKind::kSum:
        case AggKind::kMin:
        case AggKind::kMax:
        case AggKind::kAvg:
        case AggKind::kStdDev:
        case AggKind::kVariance:
          break;
        default:
          Add(DefectCode::kV206, op,
              StringPrintf("aggregate %zu has unknown kind %d: partial "
                           "merge not proven commutative",
                           i, static_cast<int>(spec.kind)));
          return;
      }
      if (spec.kind == AggKind::kCountStar) {
        if (spec.arg != nullptr) {
          Add(DefectCode::kV206, op,
              StringPrintf("aggregate %zu: COUNT(*) carries an argument "
                           "expression",
                           i));
        }
        if (spec.distinct) {
          Add(DefectCode::kV206, op,
              StringPrintf("aggregate %zu: COUNT(*) has no DISTINCT "
                           "deferral path (no argument values to dedupe)",
                           i));
        }
      } else {
        if (spec.arg == nullptr) {
          Add(DefectCode::kV206, op,
              StringPrintf("aggregate %zu (%s) has no argument expression",
                           i, AggKindName(spec.kind)));
          continue;
        }
        CheckRefs(*spec.arg, in.num_columns(), op, "aggregate argument");
      }
      TypeId declared =
          op.output_schema().column(op.group_exprs().size() + i).type;
      if (!TypeAgrees(spec.result_type, declared)) {
        Add(DefectCode::kV206, op,
            StringPrintf("aggregate %zu result type %s disagrees with "
                         "output column type %s",
                         i, TypeName(spec.result_type), TypeName(declared)));
      }
    }
  }

  void CheckDeltaRestrict(const PhysicalDeltaRestrict& op) {
    const Schema& in = op.children()[0]->output_schema();
    if (op.delta_source().empty()) {
      Add(DefectCode::kV204, op,
          "delta-restrict stage has an empty source result name");
    }
    if (op.key_col() >= in.num_columns()) {
      Add(DefectCode::kV204, op,
          StringPrintf("delta-restrict key column #%zu out of bounds for "
                       "an input chunk of %zu column(s)",
                       op.key_col(), in.num_columns()));
    }
    if (!SameTypes(op.output_schema(), in)) {
      Add(DefectCode::kV204, op,
          StringPrintf("delta-restrict output schema %s differs from its "
                       "input chunk schema %s",
                       op.output_schema().ToString().c_str(),
                       in.ToString().c_str()));
    }
  }

  const VerifyContext& ctx_;
  int step_id_;
  VerifyReport* report_;
};

}  // namespace

std::string PhysicalExcerpt(const PhysicalOp& op) {
  std::string s = op.ToString(0);
  if (s.size() > kExcerptLimit) {
    s.resize(kExcerptLimit);
    s += "...";
  }
  return s;
}

void CheckPhysicalPlan(const PhysicalOp& plan, const LogicalOp* logical,
                       const VerifyContext& ctx, int step_id,
                       VerifyReport* report) {
  PipelineChecker checker(ctx, step_id, report);
  checker.Check(plan);
  if (logical != nullptr) checker.CheckAgainstLogical(plan, *logical);
}

void CheckPhysicalStep(const Step& step, const VerifyContext& ctx,
                       VerifyReport* report) {
  if (step.physical == nullptr) return;
  CheckPhysicalPlan(*step.physical, step.plan.get(), ctx, step.id, report);
}

}  // namespace internal
}  // namespace verify
}  // namespace dbspinner
