// Static plan & program verifier (DESIGN.md §9).
//
// Compiler-style IR validation for the two intermediate representations the
// engine rewrites: the LogicalPlan trees inside each step and the linear
// Program produced by the functional rewrite. The optimizer applies a chain
// of semantically delicate transformations (Algorithm 1 expansion, Fig 9
// common-result hoisting, Fig 10 predicate pushdown, delta iteration); the
// verifier re-checks the invariants those rewrites must preserve after every
// pass, so an illegal rewrite fails at plan time with a stable defect code
// instead of diverging (or silently corrupting a fixpoint) at run time.
//
// Three analyses:
//   1. Plan checker  (plan_checker.cc): structural + type/schema validation
//      of every LogicalOp node — arity, output-schema consistency with
//      children, column-ordinal bounds, predicate typing, join key type
//      compatibility, aggregate/set-op/values well-formedness.
//   2. Program checker (program_checker.cc): an abstract interpretation of
//      the step list over registry-name states (unbound/bound/moved) with
//      the loop back-edges in the control-flow graph — definite binding
//      before use, use-after-rename, dead stores, dead loop-body
//      materializations (backward liveness), jump-target validity,
//      statically non-terminating loops, loop-invariant hoist soundness,
//      re-derivation of the Fig 10 pushdown legality fact, and the
//      fault-tolerance idempotency classification cross-check.
//   3. Pipeline checker (pipeline_checker.cc): physical-plan and fused-
//      pipeline validation of every compiled Step::physical tree (V2xx),
//      run once physical plans exist ("after-compile", EXPLAIN (VERIFY),
//      and the fuzz verify-oracle) — operator arity, physical↔logical
//      schema agreement per operator, pipeline well-formedness (leaf
//      sources, streaming-role interior, breaker-or-sink terminal), chunk
//      schema/type consistency across fused kernel chains, broadcast-probe
//      fusion legality re-derived through the planner's shared predicate
//      (exec/physical_planner.h), fused pre-aggregation soundness
//      (commutative partial merge per AggState::MergeFrom, deferred
//      DISTINCT only where legal), and morsel-safety (pipeline-role /
//      operator-type agreement, so fused stages hold no cross-morsel
//      mutable state outside per-worker LocalStats).
//
// A fourth, compile-time analysis lives outside this directory: the clang
// thread-safety annotations (common/thread_annotations.h, DESIGN.md §13)
// that turn the engine's lock-ordering discipline into -Werror=thread-safety
// build failures.
//
// Diagnostics never throw and never mutate the plan; callers decide whether
// a non-empty report is fatal (EngineOptions::verify.enforce) or is logged
// and counted in ExecStats::verify_violations.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/options.h"
#include "plan/program.h"
#include "storage/catalog.h"

namespace dbspinner {

class PhysicalOp;

namespace verify {

/// Stable defect codes. V0xx: logical-plan defects; V1xx: program-dataflow
/// defects; V2xx: physical-plan / fused-pipeline defects. Codes are
/// append-only: tests and suppression comments reference them by name.
enum class DefectCode {
  kV001,  ///< operator arity: wrong child count for the node kind
  kV002,  ///< output schema inconsistent with children / expressions
  kV003,  ///< column ordinal out of bounds for the input relation
  kV004,  ///< predicate / condition is not boolean-typed
  kV005,  ///< comparison between incompatible types in a join condition
  kV006,  ///< malformed aggregate spec (argument arity / result type)
  kV007,  ///< set-operation children incompatible with the output schema
  kV008,  ///< scan schema disagrees with the catalog table / bound result
  kV009,  ///< VALUES row shape or cell type mismatch
  kV010,  ///< invalid LIMIT / OFFSET constant
  kV011,  ///< malformed delta-restrict (empty source result name)
  kV101,  ///< read of a result name that is unbound on every path
  kV102,  ///< read of a result after a rename / merge consumed it
  kV103,  ///< rebinding a result that was never read since its last bind
  kV104,  ///< loop-body materialization never consumed before loop exit
  kV105,  ///< loop jump target missing or outside the legal range
  kV106,  ///< statically non-terminating loop (body cannot change the
          ///< termination state)
  kV107,  ///< pre-loop (hoisted) step reads a result rebound in the body
  kV108,  ///< pushdown-legality fact contradicted by the actual Ri plan
  kV109,  ///< step aliasing / retry-idempotency model violation
  kV110,  ///< malformed step payload (plan/physical/name fields, ids)
  kV111,  ///< final step misplaced (not unique or not last)
  kV201,  ///< physical operator arity: wrong child count for the node kind
  kV202,  ///< physical plan disagrees with the step's logical plan
          ///< (operator mapping or per-node output schema)
  kV203,  ///< pipeline shape violation (source is not a leaf, or a
          ///< streaming stage has no upstream input to stream from)
  kV204,  ///< chunk schema/type inconsistency across a fused kernel chain
  kV205,  ///< broadcast-probe fusion legality violation (unusable
          ///< build-side estimate annotation)
  kV206,  ///< unsound fused pre-aggregation (unknown merge kind, illegal
          ///< DISTINCT deferral, or malformed aggregate inputs)
  kV207,  ///< morsel-safety violation: pipeline role disagrees with the
          ///< operator type the chunk kernels compile against
  kV208,  ///< physical scan disagrees with the catalog table
};

/// "V001", "V108", ...
const char* DefectCodeName(DefectCode code);

/// One-line invariant description, e.g. "column ordinal out of bounds".
const char* DefectCodeDescription(DefectCode code);

/// All defect codes in order (the DESIGN.md §9 defect table; tests iterate
/// this to assert one firing case per code exists).
const std::vector<DefectCode>& AllDefectCodes();

/// One verifier finding.
struct VerifyDiagnostic {
  DefectCode code;
  int step_id = -1;     ///< offending step id; -1 when not tied to a step
  std::string detail;   ///< human-readable specifics
  std::string excerpt;  ///< plan-printer excerpt of the offending node/step

  /// "V003 [step 4] column ordinal 7 out of bounds (input has 3 columns)".
  std::string ToString() const;
};

/// Outcome of one verification pass.
struct VerifyReport {
  /// Which pipeline stage produced this report ("after-binding",
  /// "after-constant_folding", "after-compile", ...).
  std::string phase;
  std::vector<VerifyDiagnostic> diagnostics;

  bool ok() const { return diagnostics.empty(); }
  void Add(DefectCode code, int step_id, std::string detail,
           std::string excerpt = "");

  /// Multi-line rendering (phase header + one line per diagnostic), used by
  /// EXPLAIN (VERIFY) and error messages.
  std::string ToString() const;
};

/// Verification inputs beyond the IR itself.
struct VerifyContext {
  /// Enables catalog-scan schema checks (V008, V208) when set.
  const Catalog* catalog = nullptr;
  /// Post-compilation mode: every Materialize/Final step must carry a
  /// physical plan (V110).
  bool require_physical = false;
  /// Engine options the pipeline checker re-derives context-dependent
  /// legality facts against (broadcast fusion under MPP, vectorized
  /// execution). Null skips the option-dependent V2xx checks; the
  /// structural ones always run on steps that carry a physical plan.
  const EngineOptions* options = nullptr;
};

/// Checks one logical plan tree, appending diagnostics to `report`.
/// `step_id` labels the diagnostics (-1 for standalone plans).
void VerifyPlanInto(const LogicalOp& plan, const VerifyContext& ctx,
                    int step_id, VerifyReport* report);

/// Convenience wrapper for standalone plans (the UPDATE ... FROM path and
/// unit tests).
VerifyReport VerifyPlan(const LogicalOp& plan, const VerifyContext& ctx = {});

/// Checks one compiled physical tree (V2xx) outside a program (unit tests,
/// standalone artifacts). `logical` (optional) additionally runs the
/// physical↔logical agreement walk (V202) against the tree it was compiled
/// from.
VerifyReport VerifyPhysicalPlan(const PhysicalOp& plan,
                                const LogicalOp* logical = nullptr,
                                const VerifyContext& ctx = {});

/// Checks a whole program: step payloads, every step plan, every compiled
/// step physical plan, and the dataflow abstract interpretation.
VerifyReport VerifyProgram(const Program& program,
                           const VerifyContext& ctx = {});

/// Escape-hatch policy shared by the Database pipeline hooks: an empty
/// report returns OK; otherwise the diagnostic count is added to `*counter`
/// and, when `enforce` is set, the report becomes a kInternal status (a
/// verifier finding is an engine bug by definition). With `enforce` off the
/// report is written to stderr and execution continues.
Status EnforceOrCount(const VerifyReport& report, bool enforce,
                      int64_t* counter);

}  // namespace verify
}  // namespace dbspinner
