// Logical-plan checker: V001..V011.
//
// Validates one LogicalOp tree bottom-up. The checks mirror what the binder
// guarantees on entry to the optimizer, so any diagnostic after a rewrite
// pass points at the rewrite that broke the invariant. Type checks are
// deliberately lenient about kNull (constant folding legally produces NULL
// constants whose static type is kNull) and about column *names* on
// copy-through operators (rewrites relabel freely; positional types are
// authoritative, see Schema).

#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/types.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"
#include "verify/verify_internal.h"

namespace dbspinner {
namespace verify {
namespace internal {

namespace {

constexpr size_t kExcerptLimit = 512;

/// Expected child count per operator kind.
size_t ExpectedChildren(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kScan:
    case LogicalOpKind::kValues:
      return 0;
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kExcept:
    case LogicalOpKind::kIntersect:
      return 2;
    default:
      return 1;
  }
}

/// Lenient per-column type agreement: exact match, or either side is the
/// kNull wildcard (NULL literals / folded NULL expressions).
bool TypeAgrees(TypeId have, TypeId want) {
  return have == want || have == TypeId::kNull || want == TypeId::kNull;
}

/// Exact positional type equality between two schemas (names ignored).
bool SameTypes(const Schema& a, const Schema& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    if (a.column(i).type != b.column(i).type) return false;
  }
  return true;
}

class PlanChecker {
 public:
  PlanChecker(const VerifyContext& ctx, int step_id, VerifyReport* report)
      : ctx_(ctx), step_id_(step_id), report_(report) {}

  void Check(const LogicalOp& op) {
    for (const LogicalOpPtr& child : op.children) {
      if (child != nullptr) Check(*child);
    }
    size_t expected = ExpectedChildren(op.kind);
    size_t present = 0;
    for (const LogicalOpPtr& child : op.children) {
      if (child != nullptr) ++present;
    }
    if (present != op.children.size() || present != expected) {
      Add(DefectCode::kV001, op,
          StringPrintf("%s has %zu child(ren), expected %zu",
                       LogicalOpKindName(op.kind), present, expected));
      return;  // node-local checks below assume the arity holds
    }
    switch (op.kind) {
      case LogicalOpKind::kScan:
        CheckScan(op);
        break;
      case LogicalOpKind::kValues:
        CheckValues(op);
        break;
      case LogicalOpKind::kFilter:
        CheckFilter(op);
        break;
      case LogicalOpKind::kProject:
        CheckProject(op);
        break;
      case LogicalOpKind::kJoin:
        CheckJoin(op);
        break;
      case LogicalOpKind::kAggregate:
        CheckAggregate(op);
        break;
      case LogicalOpKind::kUnionAll:
      case LogicalOpKind::kExcept:
      case LogicalOpKind::kIntersect:
        CheckSetOp(op);
        break;
      case LogicalOpKind::kDistinct:
        CheckCopyThrough(op);
        break;
      case LogicalOpKind::kSort:
        CheckSort(op);
        break;
      case LogicalOpKind::kLimit:
        CheckLimit(op);
        break;
      case LogicalOpKind::kDeltaRestrict:
        CheckDeltaRestrict(op);
        break;
    }
  }

 private:
  void Add(DefectCode code, const LogicalOp& op, std::string detail) {
    report_->Add(code, step_id_, std::move(detail), PlanExcerpt(op));
  }

  /// V003 for every column reference in `expr` against `width` input columns.
  void CheckRefs(const BoundExpr& expr, size_t width, const LogicalOp& op,
                 const char* what) {
    if (expr.RefsWithin(0, width)) return;
    std::vector<size_t> refs;
    expr.CollectColumnRefs(&refs);
    for (size_t r : refs) {
      if (r >= width) {
        Add(DefectCode::kV003, op,
            StringPrintf("%s in %s references column #%zu but the input has "
                         "%zu column(s)",
                         what, LogicalOpKindName(op.kind), r, width));
        return;  // one diagnostic per expression is enough
      }
    }
  }

  void CheckScan(const LogicalOp& op) {
    if (op.scan_name.empty()) {
      Add(DefectCode::kV008, op, "scan has an empty relation name");
      return;
    }
    if (op.scan_source != ScanSource::kCatalog || ctx_.catalog == nullptr) {
      return;  // result-scan schemas are checked by the program dataflow
    }
    // Catalog::Get has no const overload; the lookup is read-only.
    auto entry = const_cast<Catalog*>(ctx_.catalog)->Get(op.scan_name);
    if (!entry.ok()) {
      Add(DefectCode::kV008, op,
          StringPrintf("scan of unknown catalog table '%s'",
                       op.scan_name.c_str()));
      return;
    }
    const Schema& actual = (*entry)->table->schema();
    if (!SameTypes(op.output_schema, actual)) {
      Add(DefectCode::kV008, op,
          StringPrintf("scan schema %s disagrees with catalog table '%s' %s",
                       op.output_schema.ToString().c_str(),
                       op.scan_name.c_str(), actual.ToString().c_str()));
    }
  }

  void CheckValues(const LogicalOp& op) {
    size_t width = op.output_schema.num_columns();
    for (size_t r = 0; r < op.rows.size(); ++r) {
      const std::vector<Value>& row = op.rows[r];
      if (row.size() != width) {
        Add(DefectCode::kV009, op,
            StringPrintf("VALUES row %zu has %zu cell(s), schema has %zu "
                         "column(s)",
                         r, row.size(), width));
        return;
      }
      for (size_t c = 0; c < row.size(); ++c) {
        TypeId want = op.output_schema.column(c).type;
        if (row[c].is_null()) continue;
        if (row[c].type() != want &&
            !IsImplicitlyCoercible(row[c].type(), want)) {
          Add(DefectCode::kV009, op,
              StringPrintf("VALUES cell (%zu,%zu) has type %s, column '%s' "
                           "expects %s",
                           r, c, TypeName(row[c].type()),
                           op.output_schema.column(c).name.c_str(),
                           TypeName(want)));
          return;
        }
      }
    }
  }

  void CheckFilter(const LogicalOp& op) {
    const LogicalOp& child = *op.children[0];
    if (!SameTypes(op.output_schema, child.output_schema)) {
      Add(DefectCode::kV002, op,
          StringPrintf("filter output schema %s differs from its child's %s",
                       op.output_schema.ToString().c_str(),
                       child.output_schema.ToString().c_str()));
    }
    if (op.predicate == nullptr) {
      Add(DefectCode::kV004, op, "filter has no predicate");
      return;
    }
    if (!TypeAgrees(op.predicate->type, TypeId::kBool)) {
      Add(DefectCode::kV004, op,
          StringPrintf("filter predicate has type %s, expected BOOL",
                       TypeName(op.predicate->type)));
    }
    CheckRefs(*op.predicate, child.output_schema.num_columns(), op,
              "predicate");
  }

  void CheckProject(const LogicalOp& op) {
    const LogicalOp& child = *op.children[0];
    if (op.projections.size() != op.output_schema.num_columns()) {
      Add(DefectCode::kV002, op,
          StringPrintf("project has %zu expression(s) for %zu output "
                       "column(s)",
                       op.projections.size(),
                       op.output_schema.num_columns()));
      return;
    }
    for (size_t i = 0; i < op.projections.size(); ++i) {
      if (op.projections[i] == nullptr) {
        Add(DefectCode::kV002, op,
            StringPrintf("project expression %zu is null", i));
        return;
      }
      if (!TypeAgrees(op.projections[i]->type,
                      op.output_schema.column(i).type)) {
        Add(DefectCode::kV002, op,
            StringPrintf("project expression %zu has type %s, output column "
                         "'%s' declares %s",
                         i, TypeName(op.projections[i]->type),
                         op.output_schema.column(i).name.c_str(),
                         TypeName(op.output_schema.column(i).type)));
      }
      CheckRefs(*op.projections[i], child.output_schema.num_columns(), op,
                "projection");
    }
  }

  void CheckJoin(const LogicalOp& op) {
    const Schema& left = op.children[0]->output_schema;
    const Schema& right = op.children[1]->output_schema;
    size_t width = left.num_columns() + right.num_columns();
    if (op.output_schema.num_columns() != width) {
      Add(DefectCode::kV002, op,
          StringPrintf("join output has %zu column(s), children provide %zu",
                       op.output_schema.num_columns(), width));
      return;
    }
    for (size_t i = 0; i < width; ++i) {
      TypeId want = i < left.num_columns()
                        ? left.column(i).type
                        : right.column(i - left.num_columns()).type;
      if (op.output_schema.column(i).type != want) {
        Add(DefectCode::kV002, op,
            StringPrintf("join output column %zu has type %s, child "
                         "provides %s",
                         i, TypeName(op.output_schema.column(i).type),
                         TypeName(want)));
        return;
      }
    }
    if (op.join_condition == nullptr) return;  // cross join
    if (!TypeAgrees(op.join_condition->type, TypeId::kBool)) {
      Add(DefectCode::kV004, op,
          StringPrintf("join condition has type %s, expected BOOL",
                       TypeName(op.join_condition->type)));
    }
    CheckRefs(*op.join_condition, width, op, "join condition");
    if (op.join_condition->RefsWithin(0, width)) {
      CheckComparisonTypes(*op.join_condition, op.output_schema, op);
    }
  }

  /// V005: every comparison inside a join condition must compare coercible
  /// types; an incomparable pair means a rewrite remapped a key ordinal into
  /// the wrong relation.
  void CheckComparisonTypes(const BoundExpr& expr, const Schema& input,
                            const LogicalOp& op) {
    if (expr.kind == BoundExprKind::kBinaryOp && expr.children.size() == 2) {
      switch (expr.binary_op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          TypeId l = expr.children[0]->type;
          TypeId r = expr.children[1]->type;
          if (l != TypeId::kNull && r != TypeId::kNull && l != r &&
              !IsImplicitlyCoercible(l, r) && !IsImplicitlyCoercible(r, l)) {
            Add(DefectCode::kV005, op,
                StringPrintf("join condition compares %s with %s: %s",
                             TypeName(l), TypeName(r),
                             expr.ToString().c_str()));
            return;
          }
          break;
        }
        default:
          break;
      }
    }
    for (const BoundExprPtr& child : expr.children) {
      if (child != nullptr) CheckComparisonTypes(*child, input, op);
    }
  }

  void CheckAggregate(const LogicalOp& op) {
    const LogicalOp& child = *op.children[0];
    size_t groups = op.group_exprs.size();
    size_t want = groups + op.aggregates.size();
    if (op.output_schema.num_columns() != want) {
      Add(DefectCode::kV002, op,
          StringPrintf("aggregate output has %zu column(s) for %zu group "
                       "expr(s) + %zu aggregate(s)",
                       op.output_schema.num_columns(), groups,
                       op.aggregates.size()));
      return;
    }
    for (size_t i = 0; i < groups; ++i) {
      if (op.group_exprs[i] == nullptr) {
        Add(DefectCode::kV006, op,
            StringPrintf("group expression %zu is null", i));
        return;
      }
      if (!TypeAgrees(op.group_exprs[i]->type,
                      op.output_schema.column(i).type)) {
        Add(DefectCode::kV002, op,
            StringPrintf("group expression %zu has type %s, output column "
                         "declares %s",
                         i, TypeName(op.group_exprs[i]->type),
                         TypeName(op.output_schema.column(i).type)));
      }
      CheckRefs(*op.group_exprs[i], child.output_schema.num_columns(), op,
                "group expression");
    }
    for (size_t i = 0; i < op.aggregates.size(); ++i) {
      const AggregateSpec& spec = op.aggregates[i];
      bool want_arg = spec.kind != AggKind::kCountStar;
      if (want_arg != (spec.arg != nullptr)) {
        Add(DefectCode::kV006, op,
            StringPrintf("aggregate %zu (%s) %s an argument", i,
                         AggKindName(spec.kind),
                         want_arg ? "is missing" : "must not carry"));
        continue;
      }
      if (spec.arg != nullptr) {
        CheckRefs(*spec.arg, child.output_schema.num_columns(), op,
                  "aggregate argument");
        if (spec.arg->type != TypeId::kNull) {
          auto rt = AggResultType(spec.kind, spec.arg->type);
          if (rt.ok() && *rt != spec.result_type) {
            Add(DefectCode::kV006, op,
                StringPrintf("aggregate %zu (%s of %s) declares result type "
                             "%s, expected %s",
                             i, AggKindName(spec.kind),
                             TypeName(spec.arg->type),
                             TypeName(spec.result_type), TypeName(*rt)));
          }
        }
      }
      if (!TypeAgrees(spec.result_type,
                      op.output_schema.column(groups + i).type)) {
        Add(DefectCode::kV002, op,
            StringPrintf("aggregate %zu result type %s differs from output "
                         "column type %s",
                         i, TypeName(spec.result_type),
                         TypeName(op.output_schema.column(groups + i).type)));
      }
    }
  }

  void CheckSetOp(const LogicalOp& op) {
    for (size_t i = 0; i < op.children.size(); ++i) {
      const Schema& child = op.children[i]->output_schema;
      if (!op.output_schema.TypesCompatible(child)) {
        Add(DefectCode::kV007, op,
            StringPrintf("%s child %zu schema %s is incompatible with "
                         "output %s",
                         LogicalOpKindName(op.kind), i,
                         child.ToString().c_str(),
                         op.output_schema.ToString().c_str()));
      }
    }
  }

  /// Distinct (and other pure row-selectors) must preserve the child's
  /// column types positionally.
  void CheckCopyThrough(const LogicalOp& op) {
    const LogicalOp& child = *op.children[0];
    if (!SameTypes(op.output_schema, child.output_schema)) {
      Add(DefectCode::kV002, op,
          StringPrintf("%s output schema %s differs from its child's %s",
                       LogicalOpKindName(op.kind),
                       op.output_schema.ToString().c_str(),
                       child.output_schema.ToString().c_str()));
    }
  }

  void CheckSort(const LogicalOp& op) {
    CheckCopyThrough(op);
    const LogicalOp& child = *op.children[0];
    for (size_t i = 0; i < op.sort_keys.size(); ++i) {
      if (op.sort_keys[i].expr == nullptr) {
        Add(DefectCode::kV002, op, StringPrintf("sort key %zu is null", i));
        return;
      }
      CheckRefs(*op.sort_keys[i].expr, child.output_schema.num_columns(), op,
                "sort key");
    }
  }

  void CheckLimit(const LogicalOp& op) {
    CheckCopyThrough(op);
    if (op.limit < -1) {
      Add(DefectCode::kV010, op,
          StringPrintf("negative LIMIT %lld", (long long)op.limit));
    }
    if (op.offset < 0) {
      Add(DefectCode::kV010, op,
          StringPrintf("negative OFFSET %lld", (long long)op.offset));
    }
  }

  void CheckDeltaRestrict(const LogicalOp& op) {
    CheckCopyThrough(op);
    if (op.delta_source.empty()) {
      Add(DefectCode::kV011, op, "delta-restrict has an empty source name");
    }
    if (op.delta_key_col >= op.children[0]->output_schema.num_columns()) {
      Add(DefectCode::kV003, op,
          StringPrintf("delta-restrict key column #%zu out of bounds (child "
                       "has %zu column(s))",
                       op.delta_key_col,
                       op.children[0]->output_schema.num_columns()));
    }
  }

  const VerifyContext& ctx_;
  int step_id_;
  VerifyReport* report_;
};

}  // namespace

std::string PlanExcerpt(const LogicalOp& op) {
  std::string s = op.ToString(0);
  if (s.size() > kExcerptLimit) {
    s.resize(kExcerptLimit);
    s += "...";
  }
  return s;
}

void CheckPlan(const LogicalOp& plan, const VerifyContext& ctx, int step_id,
               VerifyReport* report) {
  PlanChecker(ctx, step_id, report).Check(plan);
}

}  // namespace internal
}  // namespace verify
}  // namespace dbspinner
