// Functional rewrite of CTEs (paper §IV, Algorithm 1).
//
// ProgramBuilder turns a parsed statement into a Program: regular CTEs
// become single Materialize steps, recursive CTEs expand into an
// accumulate-until-empty loop (recursive_rewrite.cc), and iterative CTEs
// expand exactly as Algorithm 1 prescribes:
//
//   1  materialize R0 into cteTable
//   2  initialize loop operator
//   3  materialize Ri into workingTable          <- loop body start
//   4  rename workingTable to cteTable           (Ri has no WHERE clause)
//      -- or --
//   4' merge workingTable into cteTable by key   (Ri has a WHERE clause,
//                                                 or rename opt. disabled)
//   5  update loop, jump to 3 while continue
//   6  run Qf

#pragma once

#include "binder/binder.h"
#include "common/status.h"
#include "engine/options.h"
#include "parser/ast.h"
#include "plan/program.h"
#include "storage/catalog.h"

namespace dbspinner {

/// Builds executable Programs from parsed statements. One per statement.
class ProgramBuilder {
 public:
  ProgramBuilder(Catalog* catalog, const OptimizerOptions& options)
      : binder_(catalog), options_(options) {}

  /// Builds the program for a SELECT statement (CTE list + final query).
  Result<Program> BuildSelect(const Statement& stmt);

  /// Builds a program computing `query` under `ctes` (used by
  /// INSERT ... SELECT). The final step yields the rows.
  Result<Program> BuildQuery(const std::vector<CteDef>& ctes,
                             const QueryNode& query);

  Binder& binder() { return binder_; }

 private:
  Status AddCte(Program* program, const CteDef& def);
  Status AddRegularCte(Program* program, const CteDef& def);
  Status AddIterativeCte(Program* program, const CteDef& def);
  Status AddRecursiveCte(Program* program, const CteDef& def);

  /// Binds R0 and Ri with numeric type widening between them until the CTE
  /// schema reaches a fixpoint. Outputs the final schema and cast-wrapped
  /// plans.
  Status BindIterativeParts(const CteDef& def, Schema* schema,
                            LogicalOpPtr* r0_plan, LogicalOpPtr* ri_plan);

  Binder binder_;
  OptimizerOptions options_;
  int loop_counter_ = 0;
};

class Optimizer;

/// Delta-driven (semi-naive) iteration, part 2: step emission. When the
/// legality analysis (TryPlanDeltaIteration) accepts the CTE's Ri plan, the
/// loop body becomes
///
///   3a computeDelta cteTable -> cte__delta      (changed rows, old + new)
///   3b materialize affected keys -> cte__affected
///   3  materialize restricted Ri into workingTable
///   4  rename / merge as before
///   5  update loop, jump to 3a while continue
///
/// so each iteration joins only the rows whose inputs changed. No-op when
/// the shape is unsupported (the program then runs naively).
Status ApplyDeltaIterationRewrite(Program* program,
                                  const IterativeCteInfo& info,
                                  Optimizer* optimizer);

/// True if `query` references table/CTE `name` anywhere in its FROM trees.
bool QueryReferences(const QueryNode& query, const std::string& name);

/// Number of FROM-clause references to `name` in `query` (including nested
/// subqueries and both set-op branches).
int CountTableRefs(const QueryNode& query, const std::string& name);

}  // namespace dbspinner
