#include "rewrite/iterative_rewrite.h"

#include "common/string_util.h"
#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

void CountRefsInTableRef(const TableRef& ref, const std::string& name,
                         int* count);

void CountRefsInQuery(const QueryNode& q, const std::string& name,
                      int* count) {
  if (q.kind == QueryNodeKind::kSetOp) {
    CountRefsInQuery(*q.left, name, count);
    CountRefsInQuery(*q.right, name, count);
    return;
  }
  if (q.from) CountRefsInTableRef(*q.from, name, count);
}

void CountRefsInTableRef(const TableRef& ref, const std::string& name,
                         int* count) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      if (EqualsIgnoreCase(ref.table_name, name)) ++(*count);
      return;
    case TableRefKind::kJoin:
      CountRefsInTableRef(*ref.left, name, count);
      CountRefsInTableRef(*ref.right, name, count);
      return;
    case TableRefKind::kSubquery:
      CountRefsInQuery(*ref.subquery, name, count);
      return;
  }
}

// Widens `schema` in place against `other`'s column types; true if changed.
Result<bool> WidenSchema(Schema* schema, const Schema& other) {
  if (schema->num_columns() != other.num_columns()) {
    return Status::BindError(
        "iterative part returns " + std::to_string(other.num_columns()) +
        " columns, expected " + std::to_string(schema->num_columns()));
  }
  bool changed = false;
  Schema widened;
  for (size_t i = 0; i < schema->num_columns(); ++i) {
    TypeId a = schema->column(i).type;
    TypeId b = other.column(i).type;
    TypeId out = a;
    if (a != b) {
      if (a == TypeId::kNull) {
        out = b;
      } else if (b == TypeId::kNull) {
        out = a;
      } else {
        DBSP_ASSIGN_OR_RETURN(out, CommonNumericType(a, b));
      }
    }
    if (out != a) changed = true;
    widened.AddColumn(schema->column(i).name, out);
  }
  *schema = std::move(widened);
  return changed;
}

// Applies an optional CTE column-rename list to a plan's output schema.
Result<Schema> ApplyColumnNames(const Schema& schema,
                                const std::vector<std::string>& names,
                                const std::string& cte_name) {
  if (names.empty()) return schema;
  if (names.size() != schema.num_columns()) {
    return Status::BindError("CTE '" + cte_name + "' declares " +
                             std::to_string(names.size()) +
                             " columns but its query returns " +
                             std::to_string(schema.num_columns()));
  }
  Schema renamed;
  for (size_t i = 0; i < names.size(); ++i) {
    renamed.AddColumn(names[i], schema.column(i).type);
  }
  return renamed;
}

}  // namespace

bool QueryReferences(const QueryNode& query, const std::string& name) {
  return CountTableRefs(query, name) > 0;
}

int CountTableRefs(const QueryNode& query, const std::string& name) {
  int count = 0;
  CountRefsInQuery(query, name, &count);
  return count;
}

Result<Program> ProgramBuilder::BuildSelect(const Statement& stmt) {
  return BuildQuery(stmt.ctes, *stmt.query);
}

Result<Program> ProgramBuilder::BuildQuery(const std::vector<CteDef>& ctes,
                                           const QueryNode& query) {
  Program program;
  for (const CteDef& def : ctes) {
    DBSP_RETURN_NOT_OK(AddCte(&program, def));
  }
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr final_plan, binder_.BindQuery(query));
  Step final;
  final.kind = Step::Kind::kFinal;
  final.id = program.NewId();
  final.plan = std::move(final_plan);
  final.comment = "run the main query Qf";
  program.steps.push_back(std::move(final));
  return program;
}

Status ProgramBuilder::AddCte(Program* program, const CteDef& def) {
  switch (def.kind) {
    case CteKind::kRegular:
      return AddRegularCte(program, def);
    case CteKind::kRecursive:
      // A non-self-referential "recursive" CTE is just a regular one.
      if (!QueryReferences(*def.query, def.name)) {
        return AddRegularCte(program, def);
      }
      return AddRecursiveCte(program, def);
    case CteKind::kIterative:
      return AddIterativeCte(program, def);
  }
  return Status::Internal("unhandled CTE kind");
}

Status ProgramBuilder::AddRegularCte(Program* program, const CteDef& def) {
  if (binder_.HasCte(def.name)) {
    return Status::BindError("duplicate CTE name: " + def.name);
  }
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr plan, binder_.BindQuery(*def.query));
  DBSP_ASSIGN_OR_RETURN(
      Schema schema,
      ApplyColumnNames(plan->output_schema, def.column_names, def.name));
  plan = MakeCastProject(std::move(plan), schema);

  Step step;
  step.kind = Step::Kind::kMaterialize;
  step.id = program->NewId();
  step.target = def.name;
  step.plan = std::move(plan);
  step.comment = "materialize CTE '" + def.name + "'";
  program->steps.push_back(std::move(step));

  binder_.AddCte(def.name, CteBinding{def.name, schema});
  return Status::OK();
}

Status ProgramBuilder::BindIterativeParts(const CteDef& def, Schema* schema,
                                          LogicalOpPtr* r0_plan,
                                          LogicalOpPtr* ri_plan) {
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr r0, binder_.BindQuery(*def.init_query));
  DBSP_ASSIGN_OR_RETURN(
      Schema cte_schema,
      ApplyColumnNames(r0->output_schema, def.column_names, def.name));

  // Bind Ri against the current schema; widen numerically (e.g. an INT count
  // in R0 overwritten by a DOUBLE in Ri) and rebind until fixpoint.
  LogicalOpPtr ri;
  for (int round = 0; round < 4; ++round) {
    binder_.AddCte(def.name, CteBinding{def.name, cte_schema});
    Result<LogicalOpPtr> bound = binder_.BindQuery(*def.iter_query);
    binder_.RemoveCte(def.name);
    if (!bound.ok()) return bound.status();
    ri = std::move(bound).value();
    DBSP_ASSIGN_OR_RETURN(bool changed,
                          WidenSchema(&cte_schema, ri->output_schema));
    if (!changed) break;
    if (round == 3) {
      return Status::BindError("iterative CTE '" + def.name +
                               "' schema failed to converge");
    }
  }

  *r0_plan = MakeCastProject(std::move(r0), cte_schema);
  *ri_plan = MakeCastProject(std::move(ri), cte_schema);
  *schema = std::move(cte_schema);
  return Status::OK();
}

Status ProgramBuilder::AddIterativeCte(Program* program, const CteDef& def) {
  if (binder_.HasCte(def.name)) {
    return Status::BindError("duplicate CTE name: " + def.name);
  }
  Schema schema;
  LogicalOpPtr r0_plan, ri_plan;
  DBSP_RETURN_NOT_OK(BindIterativeParts(def, &schema, &r0_plan, &ri_plan));

  // Row identifier: declared KEY column, else the first column (DESIGN.md).
  size_t key_col = 0;
  if (def.key_column.has_value()) {
    auto idx = schema.FindColumn(*def.key_column);
    if (!idx.has_value()) {
      return Status::BindError("KEY column '" + *def.key_column +
                               "' is not a column of CTE '" + def.name + "'");
    }
    key_col = *idx;
  }

  // ---- AST facts used by the optimizer (legality of Fig 10 pushdown) ----
  IterativeCteInfo info;
  info.cte_name = def.name;
  info.working_name = def.name + "__working";
  info.cte_schema = schema;
  info.key_col = key_col;
  const QueryNode& ri = *def.iter_query;
  info.ri_has_where =
      ri.kind == QueryNodeKind::kSelect && ri.where != nullptr;
  bool single_self_scan =
      ri.kind == QueryNodeKind::kSelect && ri.from != nullptr &&
      ri.from->kind == TableRefKind::kBase &&
      EqualsIgnoreCase(ri.from->table_name, def.name) &&
      CountTableRefs(ri, def.name) == 1;
  bool no_agg = ri.kind == QueryNodeKind::kSelect && ri.group_by.empty();
  if (no_agg && ri.kind == QueryNodeKind::kSelect) {
    for (const auto& item : ri.select_list) {
      if (ContainsAggregate(*item.expr)) no_agg = false;
    }
  }
  // The termination condition must not observe the row set: UPDATES counts
  // updated rows, DELTA counts changed rows, and ANY/ALL evaluate over the
  // CTE's contents, so filtering R0 would change when the loop stops (found
  // by differential fuzzing). Only a counted-iterations loop is insensitive.
  bool termination_row_insensitive =
      def.until.kind == TerminationCondition::Kind::kIterations;
  // A LIMIT/OFFSET in Ri is row-sensitive too: the cutoff selects different
  // rows depending on what survives into the iteration, so a predicate
  // filtered into R0 would change which rows the cutoff keeps (the verifier
  // re-derives this as defect V108).
  bool no_limit = !ri.limit.has_value() && ri.offset == 0;
  info.pushdown_legal =
      single_self_scan && no_agg && termination_row_insensitive && no_limit &&
      !(ri.kind == QueryNodeKind::kSelect && ri.distinct);
  info.pass_through.assign(schema.num_columns(), false);
  if (info.pushdown_legal) {
    for (size_t i = 0;
         i < ri.select_list.size() && i < schema.num_columns(); ++i) {
      const ParseExpr& e = *ri.select_list[i].expr;
      // The binder resolves a name to its *first* occurrence in the CTE
      // schema, so with duplicate column names a name match alone could
      // mark column i pass-through while the select item actually copies an
      // earlier column. Require the resolved ordinal to be i.
      info.pass_through[i] =
          e.kind == ParseExprKind::kColumnRef &&
          schema.FindColumn(e.column_name) == std::optional<size_t>(i);
    }
  }

  // ---- Loop specification (<<Type, N, Expr>>) ----
  int loop_id = ++loop_counter_;
  LoopSpec spec;
  spec.cte_name = def.name;
  spec.key_col = key_col;
  switch (def.until.kind) {
    case TerminationCondition::Kind::kIterations:
      spec.kind = LoopSpec::Kind::kIterations;
      spec.n = def.until.n;
      break;
    case TerminationCondition::Kind::kUpdates:
      spec.kind = LoopSpec::Kind::kUpdates;
      spec.n = def.until.n;
      break;
    case TerminationCondition::Kind::kAny:
    case TerminationCondition::Kind::kAll: {
      spec.kind = def.until.kind == TerminationCondition::Kind::kAny
                      ? LoopSpec::Kind::kAny
                      : LoopSpec::Kind::kAll;
      DBSP_ASSIGN_OR_RETURN(
          spec.expr,
          binder_.BindExprOverSchema(*def.until.expr, schema, def.name));
      if (spec.expr->type != TypeId::kBool &&
          spec.expr->type != TypeId::kNull) {
        return Status::TypeError("termination condition must be boolean");
      }
      break;
    }
    case TerminationCondition::Kind::kDeltaLess:
      spec.kind = LoopSpec::Kind::kDeltaLess;
      spec.n = def.until.n;
      break;
  }

  // ---- Emit the Algorithm 1 step sequence ----
  {
    Step s;  // 1: materialize R0 into cteTable
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = def.name;
    s.plan = std::move(r0_plan);
    s.comment = "materialize non-iterative part R0 into '" + def.name + "'";
    info.r0_step_id = s.id;
    program->steps.push_back(std::move(s));
  }
  {
    Step s;  // 2: initialize loop operator
    s.kind = Step::Kind::kInitLoop;
    s.id = program->NewId();
    s.loop_id = loop_id;
    s.loop = spec.Clone();
    s.comment = "initialize loop " + spec.ToString();
    info.init_step_id = s.id;
    program->steps.push_back(std::move(s));
  }
  int body_id;
  {
    Step s;  // 3: materialize Ri into workingTable
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = info.working_name;
    s.plan = std::move(ri_plan);
    s.comment = "materialize iterative part Ri into '" + info.working_name +
                "'";
    body_id = s.id;
    info.ri_step_id = s.id;
    program->steps.push_back(std::move(s));
  }
  if (!info.ri_has_where && options_.enable_rename_optimization) {
    Step s;  // 4: rename workingTable to cteTable (Algorithm 1 line 5)
    s.kind = Step::Kind::kRename;
    s.id = program->NewId();
    s.source = info.working_name;
    s.target = def.name;
    s.loop_id = loop_id;
    s.comment = "rename '" + info.working_name + "' to '" + def.name +
                "' (whole-dataset update, no data movement)";
    program->steps.push_back(std::move(s));
  } else {
    Step s;  // 4': merge (Algorithm 1 lines 8-10); also the Fig 8 baseline
    s.kind = Step::Kind::kMergeUpdate;
    s.id = program->NewId();
    s.source = info.working_name;
    s.target = def.name;
    s.key_col = key_col;
    s.loop_id = loop_id;
    s.comment =
        info.ri_has_where
            ? "merge '" + info.working_name + "' into '" + def.name +
                  "' by key '" + schema.column(key_col).name + "'"
            : "copy '" + info.working_name + "' back into '" + def.name +
                  "' identifying updated rows (rename optimization disabled)";
    program->steps.push_back(std::move(s));
  }
  {
    Step s;  // 5/6: update loop; conditional jump back to step 3
    s.kind = Step::Kind::kLoopCheck;
    s.id = program->NewId();
    s.loop_id = loop_id;
    s.loop = spec.Clone();
    s.jump_to_id = body_id;
    s.comment = "increment counter; go to Ri while continue";
    info.check_step_id = s.id;
    program->steps.push_back(std::move(s));
  }
  // Let the init step skip the body when the loop runs zero iterations
  // (termination condition already true over R0).
  program->steps[program->FindStep(info.init_step_id)].jump_to_id =
      info.check_step_id;

  program->iterative_ctes.push_back(std::move(info));
  binder_.AddCte(def.name, CteBinding{def.name, schema});
  return Status::OK();
}

Status ApplyDeltaIterationRewrite(Program* program,
                                  const IterativeCteInfo& info,
                                  Optimizer* optimizer) {
  int init_idx = program->FindStep(info.init_step_id);
  int check_idx = program->FindStep(info.check_step_id);
  int ri_idx = program->FindStep(info.ri_step_id);
  if (init_idx < 0 || check_idx < 0 || ri_idx < 0) return Status::OK();
  const int loop_id = program->steps[static_cast<size_t>(init_idx)].loop_id;

  // Which update step closes the body? Rename needs the carry union (the
  // working table replaces the CTE wholesale); merge supplies unaffected
  // rows by itself.
  bool rename_path = false;
  bool found_update = false;
  for (int i = ri_idx + 1; i < check_idx; ++i) {
    const Step& s = program->steps[static_cast<size_t>(i)];
    if ((s.kind == Step::Kind::kRename || s.kind == Step::Kind::kMergeUpdate) &&
        EqualsIgnoreCase(s.source, info.working_name)) {
      rename_path = s.kind == Step::Kind::kRename;
      found_update = true;
      break;
    }
  }
  if (!found_update) return Status::OK();

  const std::string delta_name = info.cte_name + "__delta";
  const std::string affected_name = info.cte_name + "__affected";
  LogicalOpPtr affected_plan;
  if (!TryPlanDeltaIteration(program, info, delta_name, affected_name,
                             rename_path, &affected_plan)) {
    return Status::OK();
  }

  DBSP_RETURN_NOT_OK(optimizer->OptimizePlan(&affected_plan));
  Step& ri_step = program->steps[static_cast<size_t>(
      program->FindStep(info.ri_step_id))];
  DBSP_RETURN_NOT_OK(optimizer->OptimizePlan(&ri_step.plan));

  int compute_id;
  {
    Step s;  // 3a: diff the CTE against the previous iteration's version
    s.kind = Step::Kind::kComputeDelta;
    s.id = program->NewId();
    s.target = delta_name;
    s.source = info.cte_name;
    s.key_col = info.key_col;
    s.loop_id = loop_id;
    s.comment = "compute changed rows of '" + info.cte_name + "' into '" +
                delta_name + "'";
    compute_id = s.id;
    program->InsertBefore(info.ri_step_id, std::move(s));
  }
  {
    Step s;  // 3b: the keys whose recomputation could differ this iteration
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = affected_name;
    s.plan = std::move(affected_plan);
    s.comment = "materialize affected keys into '" + affected_name + "'";
    program->InsertBefore(info.ri_step_id, std::move(s));
  }
  // The loop body now starts at the delta computation.
  program->steps[static_cast<size_t>(program->FindStep(info.check_step_id))]
      .jump_to_id = compute_id;
  return Status::OK();
}

}  // namespace dbspinner
