// Recursive CTE expansion (ANSI-style WITH RECURSIVE).
//
// Implemented for substrate completeness: the paper contrasts iterative CTEs
// with recursive ones (fixed-point union semantics, no aggregates in the
// recursive part). The rewrite expands into the classic semi-naive loop:
//
//   acc   := base            (deduped for UNION)
//   delta := base
//   while delta not empty:
//     delta' := recursive(delta)
//     delta' := delta' - acc (UNION only; UNION ALL keeps duplicates)
//     acc    += delta'
//     delta  := delta'
//
// References to the CTE inside the recursive part see the previous delta
// (standard SQL working-table semantics); references after the CTE see the
// accumulated result.

#include "common/string_util.h"
#include "rewrite/iterative_rewrite.h"

namespace dbspinner {

Status ProgramBuilder::AddRecursiveCte(Program* program, const CteDef& def) {
  if (binder_.HasCte(def.name)) {
    return Status::BindError("duplicate CTE name: " + def.name);
  }
  const QueryNode& q = *def.query;
  if (q.kind != QueryNodeKind::kSetOp) {
    return Status::BindError(
        "recursive CTE '" + def.name +
        "' must be a UNION [ALL] of a base part and a recursive part");
  }
  if (QueryReferences(*q.left, def.name)) {
    return Status::BindError("recursive CTE '" + def.name +
                             "': the base (left) part must not reference the "
                             "CTE itself");
  }
  bool distinct_union = q.set_op == SetOpKind::kUnion;

  // Bind the base part.
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr base_plan, binder_.BindQuery(*q.left));
  Schema schema = base_plan->output_schema;
  if (!def.column_names.empty()) {
    if (def.column_names.size() != schema.num_columns()) {
      return Status::BindError("CTE '" + def.name + "' declares " +
                               std::to_string(def.column_names.size()) +
                               " columns but its query returns " +
                               std::to_string(schema.num_columns()));
    }
    Schema renamed;
    for (size_t i = 0; i < def.column_names.size(); ++i) {
      renamed.AddColumn(def.column_names[i], schema.column(i).type);
    }
    schema = renamed;
  }
  base_plan = MakeCastProject(std::move(base_plan), schema);
  if (distinct_union) {
    auto d = std::make_unique<LogicalOp>();
    d->kind = LogicalOpKind::kDistinct;
    d->output_schema = base_plan->output_schema;
    d->children.push_back(std::move(base_plan));
    base_plan = std::move(d);
  }

  std::string delta_name = def.name + "__delta";
  std::string new_delta_name = def.name + "__delta_next";
  std::string tmp_name = def.name + "__base";

  // The recursive part reads the previous delta.
  binder_.AddCte(def.name, CteBinding{delta_name, schema});
  Result<LogicalOpPtr> rec = binder_.BindQuery(*q.right);
  binder_.RemoveCte(def.name);
  if (!rec.ok()) return rec.status();
  LogicalOpPtr rec_plan = std::move(rec).value();
  if (!schema.TypesCompatible(rec_plan->output_schema)) {
    return Status::BindError("recursive CTE '" + def.name +
                             "': base and recursive parts have incompatible "
                             "schemas");
  }
  rec_plan = MakeCastProject(std::move(rec_plan), schema);

  int loop_id = ++loop_counter_;
  LoopSpec spec;
  spec.kind = LoopSpec::Kind::kWhileResultNonEmpty;
  spec.watch_name = delta_name;
  spec.cte_name = def.name;

  auto add = [&](Step s) { program->steps.push_back(std::move(s)); };

  {
    Step s;
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = tmp_name;
    s.plan = std::move(base_plan);
    s.comment = "materialize recursive base of '" + def.name + "'";
    add(std::move(s));
  }
  {
    Step s;  // acc gets a private copy (it is appended to in the loop)
    s.kind = Step::Kind::kCopyResult;
    s.id = program->NewId();
    s.source = tmp_name;
    s.target = def.name;
    s.comment = "initialize accumulator '" + def.name + "'";
    add(std::move(s));
  }
  {
    Step s;
    s.kind = Step::Kind::kRename;
    s.id = program->NewId();
    s.source = tmp_name;
    s.target = delta_name;
    s.comment = "initial delta := base";
    add(std::move(s));
  }
  int init_id;
  {
    Step s;
    s.kind = Step::Kind::kInitLoop;
    s.id = program->NewId();
    s.loop_id = loop_id;
    s.loop = spec.Clone();
    s.comment = "initialize recursive loop " + spec.ToString();
    init_id = s.id;
    add(std::move(s));
  }
  int body_id;
  {
    Step s;
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = new_delta_name;
    s.plan = std::move(rec_plan);
    s.comment = "evaluate recursive part over the previous delta";
    body_id = s.id;
    add(std::move(s));
  }
  if (distinct_union) {
    Step s;
    s.kind = Step::Kind::kDedupeResult;
    s.id = program->NewId();
    s.target = new_delta_name;
    s.source = def.name;
    s.comment = "drop rows already in the accumulator (UNION semantics)";
    add(std::move(s));
  }
  {
    Step s;
    s.kind = Step::Kind::kAppendResult;
    s.id = program->NewId();
    s.source = new_delta_name;
    s.target = def.name;
    s.comment = "append new delta to the accumulator";
    add(std::move(s));
  }
  {
    Step s;
    s.kind = Step::Kind::kRename;
    s.id = program->NewId();
    s.source = new_delta_name;
    s.target = delta_name;
    s.comment = "delta := new delta";
    add(std::move(s));
  }
  {
    Step s;
    s.kind = Step::Kind::kLoopCheck;
    s.id = program->NewId();
    s.loop_id = loop_id;
    s.loop = spec.Clone();
    s.jump_to_id = body_id;
    s.comment = "loop while the delta is non-empty";
    // An empty base means an empty initial delta: skip the body outright.
    program->steps[program->FindStep(init_id)].jump_to_id = s.id;
    add(std::move(s));
  }
  {
    Step s;
    s.kind = Step::Kind::kRemoveResult;
    s.id = program->NewId();
    s.target = delta_name;
    s.comment = "release the final delta";
    add(std::move(s));
  }

  binder_.AddCte(def.name, CteBinding{def.name, schema});
  return Status::OK();
}

}  // namespace dbspinner
