#include "binder/binder.h"

#include "common/string_util.h"
#include "expr/scalar_functions.h"

namespace dbspinner {

namespace {

// Derives an output column name for a select item without an alias.
std::string DeriveItemName(const ParseExpr& expr, size_t ordinal) {
  switch (expr.kind) {
    case ParseExprKind::kColumnRef:
      return expr.column_name;
    case ParseExprKind::kFunctionCall:
      return expr.function_name;
    default:
      return "col" + std::to_string(ordinal);
  }
}

Result<TypeId> InferBinaryType(BinaryOp op, TypeId l, TypeId r) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
      return CommonNumericType(l, r);
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      DBSP_ASSIGN_OR_RETURN(TypeId common, CommonNumericType(l, r));
      return common;
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      if ((IsNumeric(l) && IsNumeric(r)) || l == r || l == TypeId::kNull ||
          r == TypeId::kNull) {
        return TypeId::kBool;
      }
      return Status::TypeError(std::string("cannot compare ") + TypeName(l) +
                               " with " + TypeName(r));
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      if ((l == TypeId::kBool || l == TypeId::kNull) &&
          (r == TypeId::kBool || r == TypeId::kNull)) {
        return TypeId::kBool;
      }
      return Status::TypeError("AND/OR expect boolean operands");
    case BinaryOp::kConcat:
      return TypeId::kString;
  }
  return Status::Internal("unhandled binary op");
}

// Removes table qualifiers from every column reference in the tree.
void StripQualifiers(ParseExpr* expr) {
  if (expr->kind == ParseExprKind::kColumnRef) expr->qualifier.clear();
  for (auto& c : expr->children) StripQualifiers(c.get());
}

}  // namespace

bool ContainsAggregate(const ParseExpr& expr) {
  if (expr.kind == ParseExprKind::kFunctionCall &&
      IsAggregateFunctionName(expr.function_name)) {
    return true;
  }
  for (const auto& c : expr.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

bool ParseExprEquals(const ParseExpr& a, const ParseExpr& b) {
  if (a.kind != b.kind) return false;
  if (a.children.size() != b.children.size()) return false;
  switch (a.kind) {
    case ParseExprKind::kLiteral:
      if (!(a.literal.is_null() && b.literal.is_null()) &&
          !a.literal.Equals(b.literal)) {
        return false;
      }
      break;
    case ParseExprKind::kColumnRef:
      // A qualified and an unqualified reference to the same column are
      // treated as distinct here; binding decides actual identity. GROUP BY
      // matching therefore requires consistent spelling, like most engines.
      if (a.qualifier != b.qualifier || a.column_name != b.column_name) {
        return false;
      }
      break;
    case ParseExprKind::kBinaryOp:
      if (a.binary_op != b.binary_op) return false;
      break;
    case ParseExprKind::kUnaryOp:
      if (a.unary_op != b.unary_op) return false;
      break;
    case ParseExprKind::kFunctionCall:
      if (a.function_name != b.function_name || a.distinct != b.distinct) {
        return false;
      }
      break;
    case ParseExprKind::kCast:
      if (a.cast_type != b.cast_type) return false;
      break;
    case ParseExprKind::kIsNull:
    case ParseExprKind::kIn:
    case ParseExprKind::kLike:
      if (a.negated != b.negated) return false;
      break;
    case ParseExprKind::kCase:
      if (a.case_has_else != b.case_has_else) return false;
      break;
    case ParseExprKind::kStar:
      if (a.qualifier != b.qualifier) return false;
      break;
    case ParseExprKind::kBetween:
      break;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ParseExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

LogicalOpPtr MakeCastProject(LogicalOpPtr plan, const Schema& target) {
  bool same = plan->output_schema.num_columns() == target.num_columns();
  if (same) {
    for (size_t i = 0; i < target.num_columns(); ++i) {
      if (plan->output_schema.column(i).type != target.column(i).type ||
          plan->output_schema.column(i).name != target.column(i).name) {
        same = false;
        break;
      }
    }
  }
  if (same) return plan;
  std::vector<BoundExprPtr> projections;
  std::vector<std::string> names;
  for (size_t i = 0; i < target.num_columns(); ++i) {
    TypeId from = plan->output_schema.column(i).type;
    TypeId to = target.column(i).type;
    BoundExprPtr ref =
        MakeBoundColumnRef(i, from, plan->output_schema.column(i).name);
    if (from != to) {
      auto cast = std::make_unique<BoundExpr>();
      cast->kind = BoundExprKind::kCast;
      cast->type = to;
      cast->cast_type = to;
      cast->children.push_back(std::move(ref));
      ref = std::move(cast);
    }
    projections.push_back(std::move(ref));
    names.push_back(target.column(i).name);
  }
  return MakeProject(std::move(projections), std::move(names),
                     std::move(plan));
}

void Binder::AddCte(const std::string& name, CteBinding binding) {
  ctes_[ToLower(name)] = std::move(binding);
}

void Binder::RemoveCte(const std::string& name) { ctes_.erase(ToLower(name)); }

bool Binder::HasCte(const std::string& name) const {
  return ctes_.count(ToLower(name)) > 0;
}

Result<BoundExprPtr> Binder::ResolveColumn(const std::string& qualifier,
                                           const std::string& name,
                                           const BindContext& ctx) {
  std::string q = ToLower(qualifier);
  std::string col = ToLower(name);
  const ScopeEntry* found_entry = nullptr;
  size_t found_index = 0;
  for (const auto& entry : ctx.entries) {
    if (!q.empty()) {
      // An alias shadows the table name.
      const std::string& label =
          entry.alias.empty() ? entry.table_name : entry.alias;
      if (label != q) continue;
    }
    for (size_t i = entry.start; i < entry.start + entry.count; ++i) {
      if (ctx.schema.column(i).name == col) {
        if (found_entry != nullptr) {
          return Status::BindError("column reference '" +
                                   (q.empty() ? col : q + "." + col) +
                                   "' is ambiguous");
        }
        found_entry = &entry;
        found_index = i;
        // Within one scope the first match wins (duplicated names inside a
        // derived table are positional artifacts).
        break;
      }
    }
  }
  if (found_entry == nullptr) {
    return Status::BindError("column '" + (q.empty() ? col : q + "." + col) +
                             "' does not exist");
  }
  return MakeBoundColumnRef(found_index, ctx.schema.column(found_index).type,
                            col);
}

Result<BoundExprPtr> Binder::BindScalarExpr(const ParseExpr& expr,
                                            const BindContext& ctx) {
  switch (expr.kind) {
    case ParseExprKind::kLiteral:
      return MakeBoundConstant(expr.literal);
    case ParseExprKind::kColumnRef:
      return ResolveColumn(expr.qualifier, expr.column_name, ctx);
    case ParseExprKind::kStar:
      return Status::BindError("'*' is not valid in this context");
    case ParseExprKind::kBinaryOp: {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr l,
                            BindScalarExpr(*expr.children[0], ctx));
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr r,
                            BindScalarExpr(*expr.children[1], ctx));
      DBSP_ASSIGN_OR_RETURN(TypeId type,
                            InferBinaryType(expr.binary_op, l->type, r->type));
      return MakeBoundBinary(expr.binary_op, std::move(l), std::move(r), type);
    }
    case ParseExprKind::kUnaryOp: {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr operand,
                            BindScalarExpr(*expr.children[0], ctx));
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kUnaryOp;
      out->unary_op = expr.unary_op;
      if (expr.unary_op == UnaryOp::kNeg) {
        if (!IsNumeric(operand->type)) {
          return Status::TypeError("unary '-' expects a numeric operand");
        }
        out->type = operand->type;
      } else {
        if (operand->type != TypeId::kBool &&
            operand->type != TypeId::kNull) {
          return Status::TypeError("NOT expects a boolean operand");
        }
        out->type = TypeId::kBool;
      }
      out->children.push_back(std::move(operand));
      return out;
    }
    case ParseExprKind::kFunctionCall: {
      if (IsAggregateFunctionName(expr.function_name)) {
        return Status::BindError("aggregate function " + expr.function_name +
                                 "() is not allowed here");
      }
      const ScalarFunction* fn = GetScalarFunction(expr.function_name);
      if (fn == nullptr) {
        return Status::BindError("unknown function: " + expr.function_name);
      }
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kFunctionCall;
      out->function = fn;
      out->function_name = expr.function_name;
      std::vector<TypeId> arg_types;
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr arg, BindScalarExpr(*c, ctx));
        arg_types.push_back(arg->type);
        out->children.push_back(std::move(arg));
      }
      DBSP_ASSIGN_OR_RETURN(out->type, fn->infer(arg_types));
      return out;
    }
    case ParseExprKind::kCase: {
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kCase;
      out->case_has_else = expr.case_has_else;
      size_t pairs = expr.children.size() / 2;
      TypeId result = TypeId::kNull;
      for (size_t i = 0; i < pairs; ++i) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr when,
                              BindScalarExpr(*expr.children[2 * i], ctx));
        if (when->type != TypeId::kBool && when->type != TypeId::kNull) {
          return Status::TypeError("CASE WHEN condition must be boolean");
        }
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr then,
                              BindScalarExpr(*expr.children[2 * i + 1], ctx));
        if (result == TypeId::kNull) {
          result = then->type;
        } else if (then->type != TypeId::kNull && then->type != result) {
          DBSP_ASSIGN_OR_RETURN(result, CommonNumericType(result, then->type));
        }
        out->children.push_back(std::move(when));
        out->children.push_back(std::move(then));
      }
      if (expr.case_has_else) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr els,
                              BindScalarExpr(*expr.children.back(), ctx));
        if (result == TypeId::kNull) {
          result = els->type;
        } else if (els->type != TypeId::kNull && els->type != result) {
          DBSP_ASSIGN_OR_RETURN(result, CommonNumericType(result, els->type));
        }
        out->children.push_back(std::move(els));
      }
      out->type = result;
      return out;
    }
    case ParseExprKind::kCast: {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr operand,
                            BindScalarExpr(*expr.children[0], ctx));
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kCast;
      out->cast_type = expr.cast_type;
      out->type = expr.cast_type;
      out->children.push_back(std::move(operand));
      return out;
    }
    case ParseExprKind::kIsNull: {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr operand,
                            BindScalarExpr(*expr.children[0], ctx));
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kIsNull;
      out->negated = expr.negated;
      out->type = TypeId::kBool;
      out->children.push_back(std::move(operand));
      return out;
    }
    case ParseExprKind::kIn: {
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kIn;
      out->negated = expr.negated;
      out->type = TypeId::kBool;
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr child, BindScalarExpr(*c, ctx));
        out->children.push_back(std::move(child));
      }
      return out;
    }
    case ParseExprKind::kBetween: {
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kBetween;
      out->type = TypeId::kBool;
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr child, BindScalarExpr(*c, ctx));
        out->children.push_back(std::move(child));
      }
      return out;
    }
    case ParseExprKind::kLike: {
      auto out = std::make_unique<BoundExpr>();
      out->kind = BoundExprKind::kLike;
      out->negated = expr.negated;
      out->type = TypeId::kBool;
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr child, BindScalarExpr(*c, ctx));
        if (child->type != TypeId::kString && child->type != TypeId::kNull) {
          return Status::TypeError("LIKE expects string operands");
        }
        out->children.push_back(std::move(child));
      }
      return out;
    }
  }
  return Status::Internal("unhandled parse expression kind");
}

Result<LogicalOpPtr> Binder::BindTableRef(const TableRef& ref,
                                          BindContext* ctx_out) {
  switch (ref.kind) {
    case TableRefKind::kBase: {
      Schema schema;
      LogicalOpPtr scan;
      auto cte_it = ctes_.find(ref.table_name);
      if (cte_it != ctes_.end()) {
        schema = cte_it->second.schema;
        scan = MakeScan(ScanSource::kResult, cte_it->second.result_name,
                        schema);
      } else {
        DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry,
                              catalog_->Get(ref.table_name));
        schema = entry->table->schema();
        scan = MakeScan(ScanSource::kCatalog, ref.table_name, schema);
      }
      ctx_out->schema = schema;
      ctx_out->entries = {
          ScopeEntry{ref.alias, ref.table_name, 0, schema.num_columns()}};
      return scan;
    }
    case TableRefKind::kSubquery: {
      DBSP_ASSIGN_OR_RETURN(LogicalOpPtr plan, BindQuery(*ref.subquery));
      ctx_out->schema = plan->output_schema;
      ctx_out->entries = {ScopeEntry{ref.alias, "", 0,
                                     plan->output_schema.num_columns()}};
      return plan;
    }
    case TableRefKind::kJoin: {
      BindContext lctx, rctx;
      DBSP_ASSIGN_OR_RETURN(LogicalOpPtr left, BindTableRef(*ref.left, &lctx));
      DBSP_ASSIGN_OR_RETURN(LogicalOpPtr right,
                            BindTableRef(*ref.right, &rctx));
      BindContext combined;
      combined.schema = lctx.schema;
      for (const auto& col : rctx.schema.columns()) {
        combined.schema.AddColumn(col.name, col.type);
      }
      combined.entries = lctx.entries;
      size_t offset = lctx.schema.num_columns();
      for (ScopeEntry e : rctx.entries) {
        e.start += offset;
        combined.entries.push_back(std::move(e));
      }
      auto join = std::make_unique<LogicalOp>();
      join->kind = LogicalOpKind::kJoin;
      join->join_type = ref.join_type;
      join->output_schema = combined.schema;
      if (ref.join_condition) {
        DBSP_ASSIGN_OR_RETURN(join->join_condition,
                              BindScalarExpr(*ref.join_condition, combined));
        if (join->join_condition->type != TypeId::kBool &&
            join->join_condition->type != TypeId::kNull) {
          return Status::TypeError("join condition must be boolean");
        }
      } else if (ref.join_type == JoinType::kLeft) {
        return Status::BindError("LEFT JOIN requires an ON condition");
      }
      join->children.push_back(std::move(left));
      join->children.push_back(std::move(right));
      *ctx_out = std::move(combined);
      return join;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<AggregateSpec> Binder::BindAggregateCall(const ParseExpr& call,
                                                const BindContext& input_ctx) {
  AggregateSpec spec;
  spec.distinct = call.distinct;
  spec.display_name = call.function_name;
  bool is_star = call.children.size() == 1 &&
                 call.children[0]->kind == ParseExprKind::kStar;
  DBSP_ASSIGN_OR_RETURN(spec.kind,
                        ResolveAggKind(call.function_name, is_star));
  if (spec.kind == AggKind::kCountStar) {
    if (spec.distinct) {
      return Status::BindError("COUNT(DISTINCT *) is not supported");
    }
    spec.result_type = TypeId::kInt64;
    return spec;
  }
  if (call.children.size() != 1) {
    return Status::BindError(call.function_name +
                             "() expects exactly one argument");
  }
  DBSP_ASSIGN_OR_RETURN(spec.arg,
                        BindScalarExpr(*call.children[0], input_ctx));
  DBSP_ASSIGN_OR_RETURN(spec.result_type,
                        AggResultType(spec.kind, spec.arg->type));
  return spec;
}

Result<BoundExprPtr> Binder::BindAggContextExpr(
    const ParseExpr& expr, const BindContext& input_ctx,
    const std::vector<const ParseExpr*>& group_parse_exprs,
    const std::vector<BoundExprPtr>& group_bound,
    std::vector<AggregateSpec>* specs, const Schema& agg_schema) {
  // A GROUP BY expression match becomes a reference to the group column.
  for (size_t i = 0; i < group_parse_exprs.size(); ++i) {
    if (ParseExprEquals(expr, *group_parse_exprs[i])) {
      return MakeBoundColumnRef(i, group_bound[i]->type,
                                agg_schema.column(i).name);
    }
  }
  if (expr.kind == ParseExprKind::kFunctionCall &&
      IsAggregateFunctionName(expr.function_name)) {
    DBSP_ASSIGN_OR_RETURN(AggregateSpec spec,
                          BindAggregateCall(expr, input_ctx));
    // Reuse identical specs.
    size_t index = specs->size();
    for (size_t i = 0; i < specs->size(); ++i) {
      const AggregateSpec& other = (*specs)[i];
      bool same_arg =
          (!other.arg && !spec.arg) ||
          (other.arg && spec.arg && BoundExprEquals(*other.arg, *spec.arg));
      if (other.kind == spec.kind && other.distinct == spec.distinct &&
          same_arg) {
        index = i;
        break;
      }
    }
    TypeId type = spec.result_type;
    if (index == specs->size()) specs->push_back(std::move(spec));
    return MakeBoundColumnRef(group_bound.size() + index, type,
                              expr.function_name);
  }
  switch (expr.kind) {
    case ParseExprKind::kLiteral:
      return MakeBoundConstant(expr.literal);
    case ParseExprKind::kColumnRef:
      return Status::BindError(
          "column '" + expr.column_name +
          "' must appear in the GROUP BY clause or be used in an aggregate");
    default: {
      // Rebuild the node, binding children in the aggregate context.
      ParseExpr shallow;
      shallow.kind = expr.kind;
      shallow.literal = expr.literal;
      shallow.qualifier = expr.qualifier;
      shallow.column_name = expr.column_name;
      shallow.binary_op = expr.binary_op;
      shallow.unary_op = expr.unary_op;
      shallow.function_name = expr.function_name;
      shallow.distinct = expr.distinct;
      shallow.cast_type = expr.cast_type;
      shallow.negated = expr.negated;
      shallow.case_has_else = expr.case_has_else;
      // Bind children first, then type the parent by re-binding the shallow
      // node over a fake context where children are pre-bound. Implemented
      // by recursive reconstruction below.
      std::vector<BoundExprPtr> bound_children;
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(
            BoundExprPtr bc,
            BindAggContextExpr(*c, input_ctx, group_parse_exprs, group_bound,
                               specs, agg_schema));
        bound_children.push_back(std::move(bc));
      }
      auto out = std::make_unique<BoundExpr>();
      out->children = std::move(bound_children);
      switch (expr.kind) {
        case ParseExprKind::kBinaryOp: {
          out->kind = BoundExprKind::kBinaryOp;
          out->binary_op = expr.binary_op;
          DBSP_ASSIGN_OR_RETURN(
              out->type,
              InferBinaryType(expr.binary_op, out->children[0]->type,
                              out->children[1]->type));
          break;
        }
        case ParseExprKind::kUnaryOp:
          out->kind = BoundExprKind::kUnaryOp;
          out->unary_op = expr.unary_op;
          out->type = expr.unary_op == UnaryOp::kNot ? TypeId::kBool
                                                     : out->children[0]->type;
          break;
        case ParseExprKind::kFunctionCall: {
          const ScalarFunction* fn = GetScalarFunction(expr.function_name);
          if (fn == nullptr) {
            return Status::BindError("unknown function: " +
                                     expr.function_name);
          }
          out->kind = BoundExprKind::kFunctionCall;
          out->function = fn;
          out->function_name = expr.function_name;
          std::vector<TypeId> arg_types;
          for (const auto& c : out->children) arg_types.push_back(c->type);
          DBSP_ASSIGN_OR_RETURN(out->type, fn->infer(arg_types));
          break;
        }
        case ParseExprKind::kCase: {
          out->kind = BoundExprKind::kCase;
          out->case_has_else = expr.case_has_else;
          TypeId result = TypeId::kNull;
          size_t pairs = out->children.size() / 2;
          for (size_t i = 0; i < pairs; ++i) {
            TypeId t = out->children[2 * i + 1]->type;
            if (result == TypeId::kNull) {
              result = t;
            } else if (t != TypeId::kNull && t != result) {
              DBSP_ASSIGN_OR_RETURN(result, CommonNumericType(result, t));
            }
          }
          if (expr.case_has_else) {
            TypeId t = out->children.back()->type;
            if (result == TypeId::kNull) {
              result = t;
            } else if (t != TypeId::kNull && t != result) {
              DBSP_ASSIGN_OR_RETURN(result, CommonNumericType(result, t));
            }
          }
          out->type = result;
          break;
        }
        case ParseExprKind::kCast:
          out->kind = BoundExprKind::kCast;
          out->cast_type = expr.cast_type;
          out->type = expr.cast_type;
          break;
        case ParseExprKind::kIsNull:
          out->kind = BoundExprKind::kIsNull;
          out->negated = expr.negated;
          out->type = TypeId::kBool;
          break;
        case ParseExprKind::kIn:
          out->kind = BoundExprKind::kIn;
          out->negated = expr.negated;
          out->type = TypeId::kBool;
          break;
        case ParseExprKind::kBetween:
          out->kind = BoundExprKind::kBetween;
          out->type = TypeId::kBool;
          break;
        case ParseExprKind::kLike:
          out->kind = BoundExprKind::kLike;
          out->negated = expr.negated;
          out->type = TypeId::kBool;
          break;
        default:
          return Status::Internal("unexpected kind in aggregate binding");
      }
      return out;
    }
  }
}

Result<LogicalOpPtr> Binder::BindSelectCore(const QueryNode& q) {
  LogicalOpPtr plan;
  BindContext ctx;
  if (q.from) {
    DBSP_ASSIGN_OR_RETURN(plan, BindTableRef(*q.from, &ctx));
  } else {
    // SELECT of constants: a single empty row.
    auto values = std::make_unique<LogicalOp>();
    values->kind = LogicalOpKind::kValues;
    values->rows.push_back({});
    plan = std::move(values);
  }

  if (q.where) {
    DBSP_ASSIGN_OR_RETURN(BoundExprPtr pred, BindScalarExpr(*q.where, ctx));
    if (pred->type != TypeId::kBool && pred->type != TypeId::kNull) {
      return Status::TypeError("WHERE clause must be boolean");
    }
    plan = MakeFilter(std::move(pred), std::move(plan));
  }

  // Expand stars in the select list.
  std::vector<SelectItem> items;
  for (const auto& item : q.select_list) {
    if (item.expr->kind == ParseExprKind::kStar) {
      if (!q.from) {
        return Status::BindError("SELECT * requires a FROM clause");
      }
      for (const auto& entry : ctx.entries) {
        if (!item.expr->qualifier.empty()) {
          const std::string& label =
              entry.alias.empty() ? entry.table_name : entry.alias;
          if (label != item.expr->qualifier) continue;
        }
        for (size_t i = entry.start; i < entry.start + entry.count; ++i) {
          SelectItem expanded;
          // Qualified refs keep resolution unambiguous across scopes.
          const std::string& label =
              entry.alias.empty() ? entry.table_name : entry.alias;
          expanded.expr = MakeColumnRef(label, ctx.schema.column(i).name);
          expanded.alias = ctx.schema.column(i).name;
          items.push_back(std::move(expanded));
        }
      }
      continue;
    }
    items.push_back(item.Clone());
  }
  if (items.empty()) {
    return Status::BindError("empty select list");
  }

  bool has_agg = !q.group_by.empty();
  for (const auto& item : items) {
    if (ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (q.having && ContainsAggregate(*q.having)) has_agg = true;

  std::vector<BoundExprPtr> projections;
  std::vector<std::string> names;

  // Aggregate-context artifacts kept alive for ORDER BY resolution below.
  std::vector<const ParseExpr*> group_parse;
  std::vector<BoundExprPtr> group_bound_keep;
  LogicalOp* agg_op = nullptr;

  if (has_agg) {
    std::vector<BoundExprPtr> group_bound;
    for (const auto& g : q.group_by) {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr bg, BindScalarExpr(*g, ctx));
      group_parse.push_back(g.get());
      group_bound.push_back(std::move(bg));
    }
    Schema agg_schema;
    for (size_t i = 0; i < group_bound.size(); ++i) {
      std::string name =
          group_parse[i]->kind == ParseExprKind::kColumnRef
              ? group_parse[i]->column_name
              : "group" + std::to_string(i);
      agg_schema.AddColumn(name, group_bound[i]->type);
    }
    std::vector<AggregateSpec> specs;
    for (auto& item : items) {
      DBSP_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          BindAggContextExpr(*item.expr, ctx, group_parse, group_bound, &specs,
                             agg_schema));
      projections.push_back(std::move(bound));
    }
    BoundExprPtr having_bound;
    if (q.having) {
      DBSP_ASSIGN_OR_RETURN(
          having_bound,
          BindAggContextExpr(*q.having, ctx, group_parse, group_bound, &specs,
                             agg_schema));
      if (having_bound->type != TypeId::kBool &&
          having_bound->type != TypeId::kNull) {
        return Status::TypeError("HAVING clause must be boolean");
      }
    }
    for (const auto& spec : specs) {
      agg_schema.AddColumn(spec.display_name, spec.result_type);
    }
    for (const auto& g : group_bound) group_bound_keep.push_back(g->Clone());
    auto agg = std::make_unique<LogicalOp>();
    agg->kind = LogicalOpKind::kAggregate;
    agg->output_schema = agg_schema;
    agg->group_exprs = std::move(group_bound);
    agg->aggregates = std::move(specs);
    agg->children.push_back(std::move(plan));
    agg_op = agg.get();
    plan = std::move(agg);
    if (having_bound) {
      plan = MakeFilter(std::move(having_bound), std::move(plan));
    }
  } else {
    if (q.having) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    for (auto& item : items) {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            BindScalarExpr(*item.expr, ctx));
      projections.push_back(std::move(bound));
    }
  }

  for (size_t i = 0; i < items.size(); ++i) {
    names.push_back(items[i].alias.empty()
                        ? DeriveItemName(*items[i].expr, i)
                        : items[i].alias);
  }
  size_t visible = items.size();

  // Resolve ORDER BY against the select list; expressions not in it become
  // hidden projection columns dropped after the sort.
  struct PendingKey {
    size_t ordinal;
    bool descending;
  };
  std::vector<PendingKey> pending_keys;
  for (const auto& item : q.order_by) {
    PendingKey key{0, item.descending};
    // ORDER BY k (1-based position).
    if (item.expr->kind == ParseExprKind::kLiteral &&
        item.expr->literal.type() == TypeId::kInt64) {
      int64_t pos = item.expr->literal.int64_value();
      if (pos < 1 || pos > static_cast<int64_t>(visible)) {
        return Status::BindError("ORDER BY position out of range");
      }
      key.ordinal = static_cast<size_t>(pos - 1);
      pending_keys.push_back(key);
      continue;
    }
    // A (possibly qualified) name matching an output column or alias.
    if (item.expr->kind == ParseExprKind::kColumnRef) {
      size_t found = visible;
      for (size_t i = 0; i < visible; ++i) {
        if (names[i] == item.expr->column_name) {
          found = i;
          break;
        }
      }
      if (found < visible) {
        key.ordinal = found;
        pending_keys.push_back(key);
        continue;
      }
    }
    // A general expression: bind in the same context as the select list.
    BoundExprPtr bound;
    if (agg_op != nullptr) {
      DBSP_ASSIGN_OR_RETURN(
          bound, BindAggContextExpr(*item.expr, ctx, group_parse,
                                    group_bound_keep, &agg_op->aggregates,
                                    agg_op->output_schema));
      // New aggregate specs discovered here extend the aggregate's output.
      while (agg_op->output_schema.num_columns() <
             group_parse.size() + agg_op->aggregates.size()) {
        const AggregateSpec& s =
            agg_op->aggregates[agg_op->output_schema.num_columns() -
                               group_parse.size()];
        agg_op->output_schema.AddColumn(s.display_name, s.result_type);
      }
    } else {
      DBSP_ASSIGN_OR_RETURN(bound, BindScalarExpr(*item.expr, ctx));
    }
    size_t ordinal = projections.size();
    for (size_t i = 0; i < projections.size(); ++i) {
      if (BoundExprEquals(*projections[i], *bound)) {
        ordinal = i;
        break;
      }
    }
    if (ordinal == projections.size()) {
      if (q.distinct) {
        return Status::BindError(
            "ORDER BY expression of a DISTINCT query must appear in the "
            "select list");
      }
      names.push_back("__sort" + std::to_string(pending_keys.size()));
      projections.push_back(std::move(bound));
    }
    key.ordinal = ordinal;
    pending_keys.push_back(key);
  }

  size_t total_cols = projections.size();
  plan = MakeProject(std::move(projections), std::move(names),
                     std::move(plan));

  if (q.distinct) {
    auto distinct = std::make_unique<LogicalOp>();
    distinct->kind = LogicalOpKind::kDistinct;
    distinct->output_schema = plan->output_schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  if (!pending_keys.empty()) {
    auto sort = std::make_unique<LogicalOp>();
    sort->kind = LogicalOpKind::kSort;
    sort->output_schema = plan->output_schema;
    for (const PendingKey& pk : pending_keys) {
      SortKey sk;
      sk.descending = pk.descending;
      sk.expr = MakeBoundColumnRef(
          pk.ordinal, plan->output_schema.column(pk.ordinal).type,
          plan->output_schema.column(pk.ordinal).name);
      sort->sort_keys.push_back(std::move(sk));
    }
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
    if (total_cols > visible) {
      // Drop the hidden sort columns.
      std::vector<BoundExprPtr> keep;
      std::vector<std::string> keep_names;
      for (size_t i = 0; i < visible; ++i) {
        keep.push_back(MakeBoundColumnRef(
            i, plan->output_schema.column(i).type,
            plan->output_schema.column(i).name));
        keep_names.push_back(plan->output_schema.column(i).name);
      }
      plan = MakeProject(std::move(keep), std::move(keep_names),
                         std::move(plan));
    }
  }

  if (q.limit.has_value() || q.offset > 0) {
    auto limit = std::make_unique<LogicalOp>();
    limit->kind = LogicalOpKind::kLimit;
    limit->output_schema = plan->output_schema;
    limit->limit = q.limit.value_or(-1);
    limit->offset = q.offset;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  return plan;
}

Result<LogicalOpPtr> Binder::BindSetOp(const QueryNode& q) {
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr left, BindQuery(*q.left));
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr right, BindQuery(*q.right));
  if (!left->output_schema.TypesCompatible(right->output_schema)) {
    return Status::BindError(
        "UNION branches have incompatible schemas: " +
        left->output_schema.ToString() + " vs " +
        right->output_schema.ToString());
  }
  // Widen the output schema across both branches and coerce each side.
  Schema widened;
  for (size_t i = 0; i < left->output_schema.num_columns(); ++i) {
    TypeId lt = left->output_schema.column(i).type;
    TypeId rt = right->output_schema.column(i).type;
    TypeId out = lt;
    if (lt != rt) {
      if (lt == TypeId::kNull) {
        out = rt;
      } else if (rt == TypeId::kNull) {
        out = lt;
      } else {
        DBSP_ASSIGN_OR_RETURN(out, CommonNumericType(lt, rt));
      }
    }
    widened.AddColumn(left->output_schema.column(i).name, out);
  }
  left = MakeCastProject(std::move(left), widened);
  // Right side: widen types but keep the left's column names.
  right = MakeCastProject(std::move(right), widened);

  auto u = std::make_unique<LogicalOp>();
  switch (q.set_op) {
    case SetOpKind::kUnion:
    case SetOpKind::kUnionAll:
      u->kind = LogicalOpKind::kUnionAll;
      break;
    case SetOpKind::kExcept:
      u->kind = LogicalOpKind::kExcept;
      break;
    case SetOpKind::kIntersect:
      u->kind = LogicalOpKind::kIntersect;
      break;
  }
  u->output_schema = widened;
  u->children.push_back(std::move(left));
  u->children.push_back(std::move(right));
  LogicalOpPtr plan = std::move(u);
  if (q.set_op == SetOpKind::kUnion) {
    auto distinct = std::make_unique<LogicalOp>();
    distinct->kind = LogicalOpKind::kDistinct;
    distinct->output_schema = plan->output_schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }
  return plan;
}

Result<LogicalOpPtr> Binder::BindQuery(const QueryNode& query) {
  LogicalOpPtr plan;
  if (query.kind == QueryNodeKind::kSelect) {
    // BindSelectCore handles ORDER BY / LIMIT itself (it can extend the
    // projection with hidden sort columns).
    return BindSelectCore(query);
  }
  DBSP_ASSIGN_OR_RETURN(plan, BindSetOp(query));
  if (!query.order_by.empty()) {
    auto sort = std::make_unique<LogicalOp>();
    sort->kind = LogicalOpKind::kSort;
    sort->output_schema = plan->output_schema;
    for (const auto& item : query.order_by) {
      SortKey key;
      key.descending = item.descending;
      // ORDER BY k (1-based position).
      if (item.expr->kind == ParseExprKind::kLiteral &&
          item.expr->literal.type() == TypeId::kInt64) {
        int64_t pos = item.expr->literal.int64_value();
        if (pos < 1 ||
            pos > static_cast<int64_t>(plan->output_schema.num_columns())) {
          return Status::BindError("ORDER BY position out of range");
        }
        key.expr = MakeBoundColumnRef(
            static_cast<size_t>(pos - 1),
            plan->output_schema.column(static_cast<size_t>(pos - 1)).type,
            plan->output_schema.column(static_cast<size_t>(pos - 1)).name);
      } else {
        // Resolve over the output schema (select aliases included). A
        // qualified reference (ORDER BY t.a) falls back to its bare column
        // name, since qualifiers are not part of the output schema.
        Result<BoundExprPtr> bound =
            BindExprOverSchema(*item.expr, plan->output_schema, "");
        if (!bound.ok()) {
          ParseExprPtr stripped = item.expr->Clone();
          StripQualifiers(stripped.get());
          bound = BindExprOverSchema(*stripped, plan->output_schema, "");
        }
        if (!bound.ok()) return bound.status();
        key.expr = std::move(bound).value();
      }
      sort->sort_keys.push_back(std::move(key));
    }
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }
  if (query.limit.has_value() || query.offset > 0) {
    auto limit = std::make_unique<LogicalOp>();
    limit->kind = LogicalOpKind::kLimit;
    limit->output_schema = plan->output_schema;
    limit->limit = query.limit.value_or(-1);
    limit->offset = query.offset;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  return plan;
}

Result<BoundExprPtr> Binder::BindExprOverSchema(const ParseExpr& expr,
                                                const Schema& schema,
                                                const std::string& rel_name) {
  BindContext ctx;
  ctx.schema = schema;
  ctx.entries = {ScopeEntry{"", ToLower(rel_name), 0, schema.num_columns()}};
  return BindScalarExpr(expr, ctx);
}

}  // namespace dbspinner
