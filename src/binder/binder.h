// Binder: semantic analysis. Resolves names against the catalog and CTE
// scope, infers types, extracts aggregates, and produces logical plans.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "plan/logical_plan.h"
#include "storage/catalog.h"

namespace dbspinner {

/// A CTE visible while binding: the intermediate-result name its scans read
/// at runtime, and its schema.
struct CteBinding {
  std::string result_name;
  Schema schema;
};

/// Binds one statement's queries. Not thread-safe; create one per statement.
class Binder {
 public:
  explicit Binder(Catalog* catalog) : catalog_(catalog) {}

  /// Makes a CTE visible to subsequent Bind* calls (shadowing catalog tables
  /// of the same name, per SQL scoping).
  void AddCte(const std::string& name, CteBinding binding);
  void RemoveCte(const std::string& name);
  bool HasCte(const std::string& name) const;

  /// Binds a full query node (select / set-op with ORDER BY / LIMIT).
  Result<LogicalOpPtr> BindQuery(const QueryNode& query);

  /// Binds a scalar expression over a single relation's schema; unqualified
  /// and `rel_name`-qualified column refs resolve into `schema`.
  Result<BoundExprPtr> BindExprOverSchema(const ParseExpr& expr,
                                          const Schema& schema,
                                          const std::string& rel_name);

  /// Binds a FROM-clause table reference, returning the plan. `*scopes_out`
  /// (optional) receives the visible column scopes. Used by UPDATE ... FROM.
  struct ScopeEntry {
    std::string alias;       ///< explicit alias (empty if none)
    std::string table_name;  ///< underlying table/CTE name (empty for
                             ///< derived tables)
    size_t start = 0;        ///< first column ordinal in the combined schema
    size_t count = 0;
  };
  struct BindContext {
    Schema schema;                   ///< combined input schema
    std::vector<ScopeEntry> entries;
  };
  Result<LogicalOpPtr> BindTableRef(const TableRef& ref, BindContext* ctx_out);

  /// Binds a scalar expression over an explicit context (exposed for
  /// UPDATE ... FROM and tests).
  Result<BoundExprPtr> BindScalarExpr(const ParseExpr& expr,
                                      const BindContext& ctx);

 private:
  Result<LogicalOpPtr> BindSelectCore(const QueryNode& q);
  Result<LogicalOpPtr> BindSetOp(const QueryNode& q);

  Result<BoundExprPtr> BindAggContextExpr(
      const ParseExpr& expr, const BindContext& input_ctx,
      const std::vector<const ParseExpr*>& group_parse_exprs,
      const std::vector<BoundExprPtr>& group_bound,
      std::vector<AggregateSpec>* specs, const Schema& agg_schema);

  Result<AggregateSpec> BindAggregateCall(const ParseExpr& call,
                                          const BindContext& input_ctx);

  /// Resolves a (possibly qualified) column name within `ctx`.
  Result<BoundExprPtr> ResolveColumn(const std::string& qualifier,
                                     const std::string& name,
                                     const BindContext& ctx);

  Catalog* catalog_;
  std::map<std::string, CteBinding> ctes_;
};

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const ParseExpr& expr);

/// Structural equality of unbound expressions (used for GROUP BY matching).
bool ParseExprEquals(const ParseExpr& a, const ParseExpr& b);

/// Wraps `plan` in a Project that casts its columns to `target` types (and
/// renames them to `target` names). No-op if schemas already match.
LogicalOpPtr MakeCastProject(LogicalOpPtr plan, const Schema& target);

}  // namespace dbspinner
