// Aggregate functions and the AggregateSpec carried by LogicalAggregate.

#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dbspinner {

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

enum class AggKind {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kStdDev,    ///< sample standard deviation (n - 1 denominator)
  kVariance,  ///< sample variance
};

const char* AggKindName(AggKind k);

/// Resolves an aggregate function name + input type to a kind and result
/// type. `is_star` marks COUNT(*).
Result<AggKind> ResolveAggKind(const std::string& name, bool is_star);
Result<TypeId> AggResultType(AggKind kind, TypeId input);

/// One aggregate computed by a LogicalAggregate: kind, optional DISTINCT,
/// and the argument expression bound over the aggregate's input.
struct AggregateSpec {
  AggKind kind = AggKind::kCountStar;
  bool distinct = false;
  BoundExprPtr arg;  ///< null for COUNT(*)
  TypeId result_type = TypeId::kInt64;
  std::string display_name;

  AggregateSpec Clone() const;
};

/// Running state of one aggregate within one group.
class AggState {
 public:
  explicit AggState(AggKind kind) : kind_(kind) {}

  /// Folds one input value (already NULL-filtered for kCountStar).
  void Update(const Value& v);

  /// Folds another partial state of the same kind into this one, as if every
  /// value `other` saw had been fed to Update() here. Every kind's state is
  /// a commutative monoid (counts and sums add, extremes compare, variance
  /// merges via sum-of-squares), which is what makes per-worker partial
  /// aggregation with a single merge at the breaker exact.
  void MergeFrom(const AggState& other);

  /// Produces the aggregate result. SUM/MIN/MAX/AVG of zero non-NULL inputs
  /// is NULL; COUNT is 0.
  Value Finalize(TypeId result_type) const;

  /// Unfolds one previously-Update()ed value (incremental view maintenance
  /// retraction). Counts and sums subtract exactly; MIN/MAX can only drop a
  /// value strictly inside the current extreme. Returns false when the state
  /// cannot retract exactly (the value ties or beats the running extreme, or
  /// nothing was accumulated) — the caller must fall back to a full
  /// recompute of the group.
  bool Retract(const Value& v);

 private:
  AggKind kind_;
  int64_t count_ = 0;
  double sum_ = 0;
  double sum_squares_ = 0;  ///< STDDEV/VARIANCE
  int64_t isum_ = 0;
  bool all_int_ = true;
  bool has_value_ = false;
  Value extreme_;  ///< MIN/MAX running value
};

/// Tracks DISTINCT inputs of one group (for COUNT/SUM/AVG DISTINCT).
class DistinctFilter {
 public:
  /// Returns true the first time a value is seen.
  bool Insert(const Value& v);

  /// Unions another filter's seen set into this one (partial-aggregate
  /// merge). Values already present are dropped, so folding this filter's
  /// contents after the merge still counts each distinct value once.
  void MergeFrom(const DistinctFilter& other);

  size_t size() const { return seen_.size(); }

  /// Iterates the distinct values seen so far. Partial DISTINCT aggregation
  /// defers AggState updates until all partials are merged, then folds the
  /// merged set exactly once via this visitor.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Value& v : seen_) fn(v);
  }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Equals(b);
    }
  };
  std::unordered_set<Value, ValueHash, ValueEq> seen_;
};

}  // namespace dbspinner
