#include "expr/expr.h"

#include <algorithm>
#include <cmath>

#include "expr/scalar_functions.h"

namespace dbspinner {

BoundExprPtr MakeBoundConstant(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kConstant;
  e->type = v.type();
  e->constant = std::move(v);
  return e;
}

BoundExprPtr MakeBoundColumnRef(size_t index, TypeId type, std::string name) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kColumnRef;
  e->type = type;
  e->column_index = index;
  e->column_name = std::move(name);
  return e;
}

BoundExprPtr MakeBoundBinary(BinaryOp op, BoundExprPtr l, BoundExprPtr r,
                             TypeId type) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kBinaryOp;
  e->binary_op = op;
  e->type = type;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

BoundExprPtr BoundExpr::Clone() const {
  auto e = std::make_unique<BoundExpr>();
  e->kind = kind;
  e->type = type;
  e->constant = constant;
  e->column_index = column_index;
  e->column_name = column_name;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  e->function = function;
  e->function_name = function_name;
  e->cast_type = cast_type;
  e->negated = negated;
  e->case_has_else = case_has_else;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string BoundExpr::ToString() const {
  switch (kind) {
    case BoundExprKind::kConstant:
      return constant.type() == TypeId::kString
                 ? "'" + constant.ToString() + "'"
                 : constant.ToString();
    case BoundExprKind::kColumnRef:
      return (column_name.empty() ? "col" : column_name) + "#" +
             std::to_string(column_index);
    case BoundExprKind::kBinaryOp:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case BoundExprKind::kUnaryOp:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case BoundExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case BoundExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case BoundExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             TypeName(cast_type) + ")";
    case BoundExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case BoundExprKind::kIn: {
      std::string out = children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case BoundExprKind::kBetween:
      return children[0]->ToString() + " BETWEEN " + children[1]->ToString() +
             " AND " + children[2]->ToString();
    case BoundExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
  }
  return "?";
}

bool BoundExpr::HasColumnRef() const {
  if (kind == BoundExprKind::kColumnRef) return true;
  for (const auto& c : children) {
    if (c->HasColumnRef()) return true;
  }
  return false;
}

void BoundExpr::CollectColumnRefs(std::vector<size_t>* out) const {
  if (kind == BoundExprKind::kColumnRef) out->push_back(column_index);
  for (const auto& c : children) c->CollectColumnRefs(out);
}

bool BoundExpr::RefsWithin(size_t lo, size_t hi) const {
  if (kind == BoundExprKind::kColumnRef) {
    return column_index >= lo && column_index < hi;
  }
  for (const auto& c : children) {
    if (!c->RefsWithin(lo, hi)) return false;
  }
  return true;
}

void BoundExpr::RemapColumns(const std::vector<size_t>& mapping) {
  if (kind == BoundExprKind::kColumnRef) {
    column_index = mapping[column_index];
  }
  for (auto& c : children) c->RemapColumns(mapping);
}

void BoundExpr::ShiftColumns(int64_t delta) {
  if (kind == BoundExprKind::kColumnRef) {
    column_index = static_cast<size_t>(
        static_cast<int64_t>(column_index) + delta);
  }
  for (auto& c : children) c->ShiftColumns(delta);
}

namespace {

Result<Value> EvalBinary(const BoundExpr& e, const Value& l, const Value& r) {
  BinaryOp op = e.binary_op;
  // Three-valued logic for AND/OR.
  if (op == BinaryOp::kAnd) {
    if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
    if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
    if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(true);
  }
  if (op == BinaryOp::kOr) {
    if (!l.is_null() && l.bool_value()) return Value::Bool(true);
    if (!r.is_null() && r.bool_value()) return Value::Bool(true);
    if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
    return Value::Bool(false);
  }
  if (l.is_null() || r.is_null()) return Value::Null(e.type);
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        int64_t a = l.int64_value();
        int64_t b = r.int64_value();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int64(a + b);
          case BinaryOp::kSub:
            return Value::Int64(a - b);
          default:
            return Value::Int64(a * b);
        }
      }
      double a = l.AsDouble();
      double b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        default:
          return Value::Double(a * b);
      }
    }
    case BinaryOp::kDiv:
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        if (r.int64_value() == 0) {
          return Status::ExecutionError("division by zero");
        }
        return Value::Int64(l.int64_value() / r.int64_value());
      }
      if (r.AsDouble() == 0) {
        return Status::ExecutionError("division by zero");
      }
      return Value::Double(l.AsDouble() / r.AsDouble());
    case BinaryOp::kMod:
      if (l.type() == TypeId::kInt64 && r.type() == TypeId::kInt64) {
        if (r.int64_value() == 0) {
          return Status::ExecutionError("modulo by zero");
        }
        return Value::Int64(l.int64_value() % r.int64_value());
      }
      if (r.AsDouble() == 0) {
        return Status::ExecutionError("modulo by zero");
      }
      return Value::Double(std::fmod(l.AsDouble(), r.AsDouble()));
    case BinaryOp::kEq:
      return Value::Bool(l.Equals(r));
    case BinaryOp::kNe:
      return Value::Bool(!l.Equals(r));
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    case BinaryOp::kConcat:
      return Value::String(l.ToString() + r.ToString());
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

// SQL LIKE with % (any run) and _ (any one char); backtracking on %.
bool LikeMatch(const std::string& s, const std::string& p) {
  size_t si = 0, pi = 0;
  size_t star_p = std::string::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') ++pi;
  return pi == p.size();
}

}  // namespace

Result<Value> EvaluateExpr(const BoundExpr& expr, const Table& input,
                           size_t row) {
  switch (expr.kind) {
    case BoundExprKind::kConstant:
      return expr.constant;
    case BoundExprKind::kColumnRef:
      return input.column(expr.column_index).GetValue(row);
    case BoundExprKind::kBinaryOp: {
      // Short-circuit AND/OR where a definite answer exists.
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        DBSP_ASSIGN_OR_RETURN(Value l,
                              EvaluateExpr(*expr.children[0], input, row));
        if (expr.binary_op == BinaryOp::kAnd && !l.is_null() &&
            !l.bool_value()) {
          return Value::Bool(false);
        }
        if (expr.binary_op == BinaryOp::kOr && !l.is_null() && l.bool_value()) {
          return Value::Bool(true);
        }
        DBSP_ASSIGN_OR_RETURN(Value r,
                              EvaluateExpr(*expr.children[1], input, row));
        return EvalBinary(expr, l, r);
      }
      DBSP_ASSIGN_OR_RETURN(Value l,
                            EvaluateExpr(*expr.children[0], input, row));
      DBSP_ASSIGN_OR_RETURN(Value r,
                            EvaluateExpr(*expr.children[1], input, row));
      return EvalBinary(expr, l, r);
    }
    case BoundExprKind::kUnaryOp: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      if (v.is_null()) return Value::Null(expr.type);
      if (expr.unary_op == UnaryOp::kNeg) {
        if (v.type() == TypeId::kInt64) return Value::Int64(-v.int64_value());
        return Value::Double(-v.AsDouble());
      }
      return Value::Bool(!v.bool_value());
    }
    case BoundExprKind::kFunctionCall: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& c : expr.children) {
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*c, input, row));
        args.push_back(std::move(v));
      }
      return expr.function->eval(args);
    }
    case BoundExprKind::kCase: {
      size_t pairs = expr.children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        DBSP_ASSIGN_OR_RETURN(Value cond,
                              EvaluateExpr(*expr.children[2 * i], input, row));
        if (!cond.is_null() && cond.bool_value()) {
          DBSP_ASSIGN_OR_RETURN(
              Value v, EvaluateExpr(*expr.children[2 * i + 1], input, row));
          return v.CastTo(expr.type);
        }
      }
      if (expr.case_has_else) {
        DBSP_ASSIGN_OR_RETURN(Value v,
                              EvaluateExpr(*expr.children.back(), input, row));
        return v.CastTo(expr.type);
      }
      return Value::Null(expr.type);
    }
    case BoundExprKind::kCast: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      return v.CastTo(expr.cast_type);
    }
    case BoundExprKind::kIsNull: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      return Value::Bool(expr.negated ? !v.is_null() : v.is_null());
    }
    case BoundExprKind::kIn: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      if (v.is_null()) return Value::Null(TypeId::kBool);
      bool any_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(Value item,
                              EvaluateExpr(*expr.children[i], input, row));
        if (item.is_null()) {
          any_null = true;
          continue;
        }
        if (v.Equals(item)) return Value::Bool(!expr.negated);
      }
      if (any_null) return Value::Null(TypeId::kBool);
      return Value::Bool(expr.negated);
    }
    case BoundExprKind::kBetween: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      DBSP_ASSIGN_OR_RETURN(Value lo,
                            EvaluateExpr(*expr.children[1], input, row));
      DBSP_ASSIGN_OR_RETURN(Value hi,
                            EvaluateExpr(*expr.children[2], input, row));
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        return Value::Null(TypeId::kBool);
      }
      return Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case BoundExprKind::kLike: {
      DBSP_ASSIGN_OR_RETURN(Value v,
                            EvaluateExpr(*expr.children[0], input, row));
      DBSP_ASSIGN_OR_RETURN(Value p,
                            EvaluateExpr(*expr.children[1], input, row));
      if (v.is_null() || p.is_null()) return Value::Null(TypeId::kBool);
      bool match = LikeMatch(v.ToString(), p.ToString());
      return Value::Bool(expr.negated ? !match : match);
    }
  }
  return Status::Internal("unhandled expression kind");
}

namespace {

// Vectorized binary kernels: when both operands are numeric column
// references or constants, evaluate the whole column with monomorphic loops
// instead of per-row Value boxing. Returns nullptr when no kernel applies
// (the caller falls back to the row-wise path).
//
// Division and modulo stay on the slow path to preserve their per-row
// error semantics.
class NumericOperand {
 public:
  // Returns false if the expression is not a usable numeric operand.
  bool Init(const BoundExpr& e, const Table& input) {
    if (e.kind == BoundExprKind::kColumnRef) {
      col_ = &input.column(e.column_index);
      if (col_->type() != TypeId::kInt64 && col_->type() != TypeId::kDouble) {
        return false;
      }
      is_int_ = col_->type() == TypeId::kInt64;
      return true;
    }
    if (e.kind == BoundExprKind::kConstant) {
      if (e.constant.is_null()) {
        const_null_ = true;
        return true;
      }
      if (!IsNumeric(e.constant.type())) return false;
      is_int_ = e.constant.type() == TypeId::kInt64;
      const_int_ = e.constant.AsInt64();
      const_double_ = e.constant.AsDouble();
      is_const_ = true;
      return true;
    }
    return false;
  }

  bool is_column() const { return col_ != nullptr; }
  bool is_const_null() const { return const_null_; }
  bool is_int() const { return is_int_; }
  bool IsNullAt(size_t i) const {
    return col_ != nullptr ? col_->IsNull(i) : const_null_;
  }
  int64_t IntAt(size_t i) const {
    return col_ != nullptr ? col_->Int64At(i) : const_int_;
  }
  double DoubleAt(size_t i) const {
    return col_ != nullptr ? col_->NumericAt(i) : const_double_;
  }

 private:
  const ColumnVector* col_ = nullptr;
  bool is_const_ = false;
  bool const_null_ = false;
  bool is_int_ = true;
  int64_t const_int_ = 0;
  double const_double_ = 0;
};

ColumnVectorPtr TryVectorizedBinary(const BoundExpr& expr,
                                    const Table& input) {
  if (expr.kind != BoundExprKind::kBinaryOp) return nullptr;
  BinaryOp op = expr.binary_op;
  bool is_arith = op == BinaryOp::kAdd || op == BinaryOp::kSub ||
                  op == BinaryOp::kMul;
  bool is_cmp = op == BinaryOp::kEq || op == BinaryOp::kNe ||
                op == BinaryOp::kLt || op == BinaryOp::kLe ||
                op == BinaryOp::kGt || op == BinaryOp::kGe;
  if (!is_arith && !is_cmp) return nullptr;

  NumericOperand l, r;
  if (!l.Init(*expr.children[0], input) || !r.Init(*expr.children[1], input)) {
    return nullptr;
  }
  size_t n = input.num_rows();

  if (l.is_const_null() || r.is_const_null()) {
    auto out = std::make_shared<ColumnVector>(expr.type);
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) out->AppendNull();
    return out;
  }

  bool both_int = l.is_int() && r.is_int();
  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);

  if (is_arith && both_int && expr.type == TypeId::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) {
        out->AppendNull();
        continue;
      }
      int64_t a = l.IntAt(i);
      int64_t b = r.IntAt(i);
      out->AppendInt64(op == BinaryOp::kAdd   ? a + b
                       : op == BinaryOp::kSub ? a - b
                                              : a * b);
    }
    return out;
  }
  if (is_arith && expr.type == TypeId::kDouble) {
    for (size_t i = 0; i < n; ++i) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) {
        out->AppendNull();
        continue;
      }
      double a = l.DoubleAt(i);
      double b = r.DoubleAt(i);
      out->AppendDouble(op == BinaryOp::kAdd   ? a + b
                        : op == BinaryOp::kSub ? a - b
                                               : a * b);
    }
    return out;
  }
  if (is_cmp) {
    for (size_t i = 0; i < n; ++i) {
      if (l.IsNullAt(i) || r.IsNullAt(i)) {
        out->AppendNull();
        continue;
      }
      bool res;
      if (both_int) {
        int64_t a = l.IntAt(i);
        int64_t b = r.IntAt(i);
        switch (op) {
          case BinaryOp::kEq: res = a == b; break;
          case BinaryOp::kNe: res = a != b; break;
          case BinaryOp::kLt: res = a < b; break;
          case BinaryOp::kLe: res = a <= b; break;
          case BinaryOp::kGt: res = a > b; break;
          default: res = a >= b; break;
        }
      } else {
        double a = l.DoubleAt(i);
        double b = r.DoubleAt(i);
        switch (op) {
          case BinaryOp::kEq: res = a == b; break;
          case BinaryOp::kNe: res = a != b; break;
          case BinaryOp::kLt: res = a < b; break;
          case BinaryOp::kLe: res = a <= b; break;
          case BinaryOp::kGt: res = a > b; break;
          default: res = a >= b; break;
        }
      }
      out->AppendBool(res);
    }
    return out;
  }
  return nullptr;
}

}  // namespace

Result<ColumnVectorPtr> EvaluateExprBatch(const BoundExpr& expr,
                                          const Table& input) {
  size_t n = input.num_rows();
  // Fast path: plain column reference of the same type (zero copy).
  if (expr.kind == BoundExprKind::kColumnRef &&
      input.column(expr.column_index).type() == expr.type) {
    return input.column_ptr(expr.column_index);
  }
  // Fast path: monomorphic numeric kernels.
  if (ColumnVectorPtr vectorized = TryVectorizedBinary(expr, input)) {
    return vectorized;
  }
  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, input, i));
    out->Append(v);
  }
  return out;
}

Result<std::vector<uint32_t>> EvaluatePredicate(const BoundExpr& expr,
                                                const Table& input) {
  std::vector<uint32_t> sel;
  size_t n = input.num_rows();
  // Vectorized comparison predicates skip per-row Value boxing entirely.
  if (ColumnVectorPtr mask = TryVectorizedBinary(expr, input)) {
    for (size_t i = 0; i < n; ++i) {
      if (!mask->IsNull(i) && mask->BoolAt(i)) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    return sel;
  }
  for (size_t i = 0; i < n; ++i) {
    DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, input, i));
    if (!v.is_null() && v.bool_value()) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

bool BoundExprEquals(const BoundExpr& a, const BoundExpr& b) {
  if (a.kind != b.kind || a.type != b.type) return false;
  if (a.children.size() != b.children.size()) return false;
  switch (a.kind) {
    case BoundExprKind::kConstant:
      if (!(a.constant.is_null() && b.constant.is_null()) &&
          !a.constant.Equals(b.constant)) {
        return false;
      }
      break;
    case BoundExprKind::kColumnRef:
      if (a.column_index != b.column_index) return false;
      break;
    case BoundExprKind::kBinaryOp:
      if (a.binary_op != b.binary_op) return false;
      break;
    case BoundExprKind::kUnaryOp:
      if (a.unary_op != b.unary_op) return false;
      break;
    case BoundExprKind::kFunctionCall:
      if (a.function_name != b.function_name) return false;
      break;
    case BoundExprKind::kCast:
      if (a.cast_type != b.cast_type) return false;
      break;
    case BoundExprKind::kIsNull:
    case BoundExprKind::kIn:
    case BoundExprKind::kLike:
      if (a.negated != b.negated) return false;
      break;
    case BoundExprKind::kCase:
      if (a.case_has_else != b.case_has_else) return false;
      break;
    case BoundExprKind::kBetween:
      break;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!BoundExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

namespace {

// Collects the strict column set: columns where a NULL input forces the
// expression to NULL.
void StrictColumns(const BoundExpr& e, std::vector<size_t>* out) {
  switch (e.kind) {
    case BoundExprKind::kColumnRef:
      out->push_back(e.column_index);
      return;
    case BoundExprKind::kConstant:
      return;
    case BoundExprKind::kBinaryOp:
      switch (e.binary_op) {
        case BinaryOp::kAnd: {
          // A NULL that nulls either side makes AND at-most-NULL (not TRUE):
          // union is valid for null-rejection purposes.
          StrictColumns(*e.children[0], out);
          StrictColumns(*e.children[1], out);
          return;
        }
        case BinaryOp::kOr: {
          std::vector<size_t> l, r;
          StrictColumns(*e.children[0], &l);
          StrictColumns(*e.children[1], &r);
          std::sort(l.begin(), l.end());
          std::sort(r.begin(), r.end());
          std::vector<size_t> both;
          std::set_intersection(l.begin(), l.end(), r.begin(), r.end(),
                                std::back_inserter(both));
          out->insert(out->end(), both.begin(), both.end());
          return;
        }
        default:
          // Arithmetic and comparisons are strict in both operands.
          StrictColumns(*e.children[0], out);
          StrictColumns(*e.children[1], out);
          return;
      }
    case BoundExprKind::kUnaryOp:
      StrictColumns(*e.children[0], out);
      return;
    case BoundExprKind::kCast:
      StrictColumns(*e.children[0], out);
      return;
    case BoundExprKind::kBetween:
    case BoundExprKind::kLike:
      for (const auto& c : e.children) StrictColumns(*c, out);
      return;
    case BoundExprKind::kFunctionCall:
    case BoundExprKind::kCase:
    case BoundExprKind::kIsNull:
    case BoundExprKind::kIn:
      // COALESCE/CASE/IS NULL and general functions may map NULL to non-NULL:
      // conservatively contribute nothing.
      return;
  }
}

}  // namespace

std::vector<size_t> NullRejectedColumns(const BoundExpr& expr) {
  std::vector<size_t> out;
  StrictColumns(expr, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SplitConjuncts(const BoundExpr& expr, std::vector<BoundExprPtr>* out) {
  if (expr.kind == BoundExprKind::kBinaryOp &&
      expr.binary_op == BinaryOp::kAnd) {
    SplitConjuncts(*expr.children[0], out);
    SplitConjuncts(*expr.children[1], out);
    return;
  }
  out->push_back(expr.Clone());
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  if (conjuncts.empty()) return MakeBoundConstant(Value::Bool(true));
  BoundExprPtr out = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = MakeBoundBinary(BinaryOp::kAnd, std::move(out),
                          std::move(conjuncts[i]), TypeId::kBool);
  }
  return out;
}

}  // namespace dbspinner
