// Bound (resolved, typed) expressions and their evaluator.
//
// The binder converts ParseExpr trees into BoundExpr trees where every column
// reference is an ordinal into the input relation's schema and every function
// is resolved against the scalar-function registry. Aggregates never appear
// inside BoundExpr: the binder extracts them into AggregateSpecs on a
// LogicalAggregate and replaces them with column references over the
// aggregate's output.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "parser/ast.h"
#include "storage/table.h"

namespace dbspinner {

struct ScalarFunction;

enum class BoundExprKind {
  kConstant,
  kColumnRef,
  kBinaryOp,
  kUnaryOp,
  kFunctionCall,
  kCase,
  kCast,
  kIsNull,
  kIn,
  kBetween,
  kLike,
};

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// A fully resolved expression node. `type` is the statically inferred
/// result type.
struct BoundExpr {
  BoundExprKind kind;
  TypeId type = TypeId::kNull;

  // kConstant
  Value constant;

  // kColumnRef
  size_t column_index = 0;
  std::string column_name;  ///< for diagnostics / printing

  // kBinaryOp / kUnaryOp
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;

  // kFunctionCall
  const ScalarFunction* function = nullptr;
  std::string function_name;

  // kCast
  TypeId cast_type = TypeId::kNull;

  // kIsNull / kIn
  bool negated = false;
  bool case_has_else = false;

  std::vector<BoundExprPtr> children;

  BoundExprPtr Clone() const;
  std::string ToString() const;

  /// True if any node in the tree is a column reference.
  bool HasColumnRef() const;

  /// Appends all referenced column ordinals (with duplicates) to `out`.
  void CollectColumnRefs(std::vector<size_t>* out) const;

  /// True if every referenced ordinal is within [lo, hi).
  bool RefsWithin(size_t lo, size_t hi) const;

  /// Rewrites every column ordinal through `mapping` (new = mapping[old]).
  void RemapColumns(const std::vector<size_t>& mapping);

  /// Shifts every column ordinal by `delta`.
  void ShiftColumns(int64_t delta);
};

BoundExprPtr MakeBoundConstant(Value v);
BoundExprPtr MakeBoundColumnRef(size_t index, TypeId type, std::string name);
BoundExprPtr MakeBoundBinary(BinaryOp op, BoundExprPtr l, BoundExprPtr r,
                             TypeId type);

/// Evaluates `expr` on row `row` of `input`.
Result<Value> EvaluateExpr(const BoundExpr& expr, const Table& input,
                           size_t row);

/// Evaluates `expr` for every row of `input` into a new ColumnVector of
/// `expr.type`.
Result<ColumnVectorPtr> EvaluateExprBatch(const BoundExpr& expr,
                                          const Table& input);

/// Evaluates a predicate for every row; emits the passing row indices.
/// NULL and false both fail the predicate (SQL WHERE semantics).
Result<std::vector<uint32_t>> EvaluatePredicate(const BoundExpr& expr,
                                                const Table& input);

/// Structural equality of bound expressions.
bool BoundExprEquals(const BoundExpr& a, const BoundExpr& b);

/// Column ordinals on which `expr` is strict: a NULL in any of them forces
/// the whole expression to NULL (hence "not TRUE" as a predicate). Used for
/// outer-join simplification.
std::vector<size_t> NullRejectedColumns(const BoundExpr& expr);

/// Splits an AND tree into conjuncts (clones of the leaves).
void SplitConjuncts(const BoundExpr& expr, std::vector<BoundExprPtr>* out);

/// ANDs a conjunct list back together (empty list -> TRUE constant).
BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts);

}  // namespace dbspinner
