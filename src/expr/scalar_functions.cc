#include "expr/scalar_functions.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"

namespace dbspinner {

namespace {

Status ArityError(const std::string& name, size_t got, const char* want) {
  return Status::BindError("function " + name + " expects " + want +
                           " argument(s), got " + std::to_string(got));
}

Result<TypeId> InferNumericVariadic(const std::string& name,
                                    const std::vector<TypeId>& args,
                                    size_t min_arity) {
  if (args.size() < min_arity) {
    return ArityError(name, args.size(), ">= required");
  }
  TypeId out = TypeId::kNull;
  for (TypeId t : args) {
    DBSP_ASSIGN_OR_RETURN(out, CommonNumericType(out, t));
  }
  return out;
}

// LEAST / GREATEST: variadic numeric; NULL inputs are ignored (Postgres
// semantics); all-NULL -> NULL.
Value LeastGreatest(const std::vector<Value>& args, bool greatest) {
  Value best = Value::Null();
  for (const Value& v : args) {
    if (v.is_null()) continue;
    if (best.is_null() || (greatest ? v.Compare(best) > 0
                                    : v.Compare(best) < 0)) {
      best = v;
    }
  }
  return best;
}

double Num(const Value& v) { return v.AsDouble(); }

bool AnyNull(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.is_null()) return true;
  }
  return false;
}

const std::unordered_map<std::string, ScalarFunction>& Registry() {
  static const std::unordered_map<std::string, ScalarFunction>* kRegistry = [] {
    auto* m = new std::unordered_map<std::string, ScalarFunction>();
    auto add = [m](ScalarFunction f) { (*m)[f.name] = std::move(f); };

    add({"least",
         [](const std::vector<TypeId>& a) {
           return InferNumericVariadic("least", a, 1);
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           return LeastGreatest(a, /*greatest=*/false);
         }});
    add({"greatest",
         [](const std::vector<TypeId>& a) {
           return InferNumericVariadic("greatest", a, 1);
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           return LeastGreatest(a, /*greatest=*/true);
         }});
    add({"coalesce",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.empty()) return ArityError("coalesce", 0, ">= 1");
           TypeId out = TypeId::kNull;
           for (TypeId t : a) {
             if (out == TypeId::kNull) {
               out = t;
             } else if (t != TypeId::kNull && t != out) {
               if (IsNumeric(out) && IsNumeric(t)) {
                 DBSP_ASSIGN_OR_RETURN(out, CommonNumericType(out, t));
               } else {
                 return Status::TypeError(
                     "coalesce arguments have incompatible types");
               }
             }
           }
           return out;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           for (const Value& v : a) {
             if (!v.is_null()) return v;
           }
           return Value::Null();
         }});
    add({"nullif",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 2) return ArityError("nullif", a.size(), "2");
           return a[0];
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (!a[0].is_null() && !a[1].is_null() && a[0].Equals(a[1])) {
             return Value::Null(a[0].type());
           }
           return a[0];
         }});
    add({"abs",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 1) return ArityError("abs", a.size(), "1");
           return InferNumericVariadic("abs", a, 1);
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (a[0].type() == TypeId::kInt64) {
             return Value::Int64(std::llabs(a[0].int64_value()));
           }
           return Value::Double(std::fabs(Num(a[0])));
         }});

    auto unary_double = [&add](const std::string& name, double (*fn)(double)) {
      add({name,
           [name](const std::vector<TypeId>& a) -> Result<TypeId> {
             if (a.size() != 1) return ArityError(name, a.size(), "1");
             if (!IsNumeric(a[0])) {
               return Status::TypeError(name + " expects a numeric argument");
             }
             return TypeId::kDouble;
           },
           [fn](const std::vector<Value>& a) -> Result<Value> {
             if (AnyNull(a)) return Value::Null(TypeId::kDouble);
             return Value::Double(fn(Num(a[0])));
           }});
    };
    unary_double("ceiling", std::ceil);
    unary_double("ceil", std::ceil);
    unary_double("floor", std::floor);
    unary_double("sqrt", std::sqrt);
    unary_double("exp", std::exp);
    unary_double("ln", std::log);
    unary_double("log", std::log10);

    add({"round",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.empty() || a.size() > 2) {
             return ArityError("round", a.size(), "1 or 2");
           }
           if (!IsNumeric(a[0])) {
             return Status::TypeError("round expects a numeric argument");
           }
           return TypeId::kDouble;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kDouble);
           double x = Num(a[0]);
           if (a.size() == 2) {
             double scale = std::pow(10.0, static_cast<double>(a[1].AsInt64()));
             return Value::Double(std::round(x * scale) / scale);
           }
           return Value::Double(std::round(x));
         }});
    add({"mod",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 2) return ArityError("mod", a.size(), "2");
           return CommonNumericType(a[0], a[1]);
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null();
           if (a[0].type() == TypeId::kInt64 &&
               a[1].type() == TypeId::kInt64) {
             if (a[1].int64_value() == 0) {
               return Status::ExecutionError("MOD by zero");
             }
             return Value::Int64(a[0].int64_value() % a[1].int64_value());
           }
           double d = Num(a[1]);
           if (d == 0) return Status::ExecutionError("MOD by zero");
           return Value::Double(std::fmod(Num(a[0]), d));
         }});

    auto binary_double = [&add](const std::string& name,
                                double (*fn)(double, double)) {
      add({name,
           [name](const std::vector<TypeId>& a) -> Result<TypeId> {
             if (a.size() != 2) return ArityError(name, a.size(), "2");
             if (!IsNumeric(a[0]) || !IsNumeric(a[1])) {
               return Status::TypeError(name + " expects numeric arguments");
             }
             return TypeId::kDouble;
           },
           [fn](const std::vector<Value>& a) -> Result<Value> {
             if (AnyNull(a)) return Value::Null(TypeId::kDouble);
             return Value::Double(fn(Num(a[0]), Num(a[1])));
           }});
    };
    binary_double("power", std::pow);
    binary_double("pow", std::pow);

    add({"sign",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 1) return ArityError("sign", a.size(), "1");
           return TypeId::kInt64;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kInt64);
           double x = Num(a[0]);
           return Value::Int64(x > 0 ? 1 : (x < 0 ? -1 : 0));
         }});
    add({"length",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 1) return ArityError("length", a.size(), "1");
           return TypeId::kInt64;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kInt64);
           return Value::Int64(
               static_cast<int64_t>(a[0].ToString().size()));
         }});
    add({"upper",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 1) return ArityError("upper", a.size(), "1");
           return TypeId::kString;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kString);
           return Value::String(ToUpper(a[0].ToString()));
         }});
    add({"lower",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 1) return ArityError("lower", a.size(), "1");
           return TypeId::kString;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kString);
           return Value::String(ToLower(a[0].ToString()));
         }});
    add({"substr",
         [](const std::vector<TypeId>& a) -> Result<TypeId> {
           if (a.size() != 2 && a.size() != 3) {
             return ArityError("substr", a.size(), "2 or 3");
           }
           return TypeId::kString;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           if (AnyNull(a)) return Value::Null(TypeId::kString);
           std::string s = a[0].ToString();
           int64_t start = a[1].AsInt64();  // 1-based
           if (start < 1) start = 1;
           if (static_cast<size_t>(start) > s.size()) return Value::String("");
           size_t from = static_cast<size_t>(start - 1);
           size_t len = s.size() - from;
           if (a.size() == 3) {
             int64_t want = a[2].AsInt64();
             if (want < 0) want = 0;
             len = std::min<size_t>(len, static_cast<size_t>(want));
           }
           return Value::String(s.substr(from, len));
         }});
    add({"concat",
         [](const std::vector<TypeId>&) -> Result<TypeId> {
           return TypeId::kString;
         },
         [](const std::vector<Value>& a) -> Result<Value> {
           std::string out;
           for (const Value& v : a) {
             if (!v.is_null()) out += v.ToString();
           }
           return Value::String(out);
         }});
    return m;
  }();
  return *kRegistry;
}

}  // namespace

const ScalarFunction* GetScalarFunction(const std::string& name) {
  const auto& reg = Registry();
  auto it = reg.find(ToLower(name));
  return it == reg.end() ? nullptr : &it->second;
}

bool IsAggregateFunctionName(const std::string& name) {
  std::string n = ToLower(name);
  return n == "count" || n == "sum" || n == "min" || n == "max" ||
         n == "avg" || n == "stddev" || n == "stddev_samp" ||
         n == "variance" || n == "var_samp";
}

std::vector<std::string> ScalarFunctionNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, fn] : Registry()) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> AggregateFunctionNames() {
  return {"avg", "count", "max", "min", "stddev", "sum", "variance"};
}

}  // namespace dbspinner
