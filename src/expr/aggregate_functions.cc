#include "expr/aggregate_functions.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "expr/expr.h"

namespace dbspinner {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kStdDev:
      return "stddev";
    case AggKind::kVariance:
      return "variance";
  }
  return "?";
}

Result<AggKind> ResolveAggKind(const std::string& name, bool is_star) {
  std::string n = ToLower(name);
  if (n == "count") return is_star ? AggKind::kCountStar : AggKind::kCount;
  if (is_star) {
    return Status::BindError("'*' is only valid as an argument of COUNT");
  }
  if (n == "sum") return AggKind::kSum;
  if (n == "min") return AggKind::kMin;
  if (n == "max") return AggKind::kMax;
  if (n == "avg") return AggKind::kAvg;
  if (n == "stddev" || n == "stddev_samp") return AggKind::kStdDev;
  if (n == "variance" || n == "var_samp") return AggKind::kVariance;
  return Status::BindError("unknown aggregate function: " + name);
}

Result<TypeId> AggResultType(AggKind kind, TypeId input) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kSum:
      if (!IsNumeric(input)) {
        return Status::TypeError("SUM expects a numeric argument");
      }
      return input == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case AggKind::kAvg:
    case AggKind::kStdDev:
    case AggKind::kVariance:
      if (!IsNumeric(input)) {
        return Status::TypeError(std::string(AggKindName(kind)) +
                                 " expects a numeric argument");
      }
      return TypeId::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
      return input;
  }
  return Status::Internal("unhandled aggregate kind");
}

AggregateSpec AggregateSpec::Clone() const {
  AggregateSpec s;
  s.kind = kind;
  s.distinct = distinct;
  if (arg) s.arg = arg->Clone();
  s.result_type = result_type;
  s.display_name = display_name;
  return s;
}

void AggState::Update(const Value& v) {
  switch (kind_) {
    case AggKind::kCountStar:
      ++count_;
      return;
    case AggKind::kCount:
      if (!v.is_null()) ++count_;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kStdDev:
    case AggKind::kVariance:
      if (v.is_null()) return;
      has_value_ = true;
      ++count_;
      if (v.type() == TypeId::kInt64) {
        isum_ += v.int64_value();
        sum_ += static_cast<double>(v.int64_value());
      } else {
        all_int_ = false;
        sum_ += v.AsDouble();
      }
      sum_squares_ += v.AsDouble() * v.AsDouble();
      return;
    case AggKind::kMin:
    case AggKind::kMax:
      if (v.is_null()) return;
      if (!has_value_) {
        extreme_ = v;
        has_value_ = true;
        return;
      }
      if (kind_ == AggKind::kMin ? v.Compare(extreme_) < 0
                                 : v.Compare(extreme_) > 0) {
        extreme_ = v;
      }
      return;
  }
}

Value AggState::Finalize(TypeId result_type) const {
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(count_);
    case AggKind::kSum:
      if (!has_value_) return Value::Null(result_type);
      if (result_type == TypeId::kInt64 && all_int_) {
        return Value::Int64(isum_);
      }
      return Value::Double(sum_);
    case AggKind::kAvg:
      if (!has_value_) return Value::Null(TypeId::kDouble);
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggKind::kStdDev:
    case AggKind::kVariance: {
      // Sample statistics (n - 1); NULL for fewer than two inputs.
      if (count_ < 2) return Value::Null(TypeId::kDouble);
      double n = static_cast<double>(count_);
      double variance =
          std::max(0.0, (sum_squares_ - sum_ * sum_ / n) / (n - 1));
      return Value::Double(kind_ == AggKind::kVariance
                               ? variance
                               : std::sqrt(variance));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      if (!has_value_) return Value::Null(result_type);
      return extreme_;
  }
  return Value::Null();
}

bool AggState::Retract(const Value& v) {
  switch (kind_) {
    case AggKind::kCountStar:
      if (count_ == 0) return false;
      --count_;
      return true;
    case AggKind::kCount:
      if (v.is_null()) return true;
      if (count_ == 0) return false;
      --count_;
      return true;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kStdDev:
    case AggKind::kVariance:
      if (v.is_null()) return true;
      if (count_ == 0) return false;
      --count_;
      if (v.type() == TypeId::kInt64) {
        isum_ -= v.int64_value();
        sum_ -= static_cast<double>(v.int64_value());
      } else {
        sum_ -= v.AsDouble();
      }
      sum_squares_ -= v.AsDouble() * v.AsDouble();
      if (count_ == 0) {
        // Reset exactly so integer SUMs stay drift-free across full
        // retraction cycles (and NULL is reported again).
        has_value_ = false;
        sum_ = 0;
        sum_squares_ = 0;
        isum_ = 0;
        all_int_ = true;
      }
      return true;
    case AggKind::kMin:
    case AggKind::kMax:
      if (v.is_null()) return true;
      if (!has_value_) return false;
      // Retracting a value that ties or beats the running extreme may expose
      // a different survivor we never kept; only strictly-dominated values
      // can leave without a recompute.
      if (kind_ == AggKind::kMin) return v.Compare(extreme_) > 0;
      return v.Compare(extreme_) < 0;
  }
  return false;
}

void AggState::MergeFrom(const AggState& other) {
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      count_ += other.count_;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kStdDev:
    case AggKind::kVariance:
      count_ += other.count_;
      sum_ += other.sum_;
      sum_squares_ += other.sum_squares_;
      isum_ += other.isum_;
      all_int_ = all_int_ && other.all_int_;
      has_value_ = has_value_ || other.has_value_;
      return;
    case AggKind::kMin:
    case AggKind::kMax:
      if (other.has_value_) Update(other.extreme_);
      return;
  }
}

bool DistinctFilter::Insert(const Value& v) { return seen_.insert(v).second; }

void DistinctFilter::MergeFrom(const DistinctFilter& other) {
  seen_.insert(other.seen_.begin(), other.seen_.end());
}

}  // namespace dbspinner
