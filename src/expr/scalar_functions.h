// Scalar (row-wise) function registry.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dbspinner {

/// One scalar SQL function. `infer` validates argument types and produces the
/// result type; `eval` computes one invocation.
struct ScalarFunction {
  std::string name;
  std::function<Result<TypeId>(const std::vector<TypeId>&)> infer;
  std::function<Result<Value>(const std::vector<Value>&)> eval;
};

/// Looks up a scalar function by lower-case name; nullptr if unknown.
///
/// Registered functions: least, greatest, coalesce, nullif, abs, ceiling,
/// ceil, floor, round, mod, power, pow, sqrt, exp, ln, log, sign, length,
/// upper, lower, substr, concat.
const ScalarFunction* GetScalarFunction(const std::string& name);

/// True if `name` names an aggregate function (count/sum/min/max/avg).
bool IsAggregateFunctionName(const std::string& name);

/// All registered scalar function names, sorted. Generation hook for the
/// SQL fuzzer: generated queries only call functions the engine implements.
std::vector<std::string> ScalarFunctionNames();

/// Canonical aggregate function names, sorted (one spelling per aggregate).
std::vector<std::string> AggregateFunctionNames();

}  // namespace dbspinner
