// Cost model and iteration estimation.
//
// The paper's future-work list (§IX) names "estimating number of iterations
// for more accurate optimizer costing". This module implements that idea:
// textbook cardinality heuristics give per-plan costs, a LoopSpec-aware
// estimator predicts how often the loop body runs, and Program costs weight
// loop-body steps by that estimate. The common-result rewrite consults it to
// skip hoisting when the loop is predicted to run at most once (the only
// case where materializing the common part cannot pay off).

#pragma once

#include <string>

#include "plan/program.h"
#include "storage/catalog.h"

namespace dbspinner {

/// Cardinality and cost estimates for logical plans and programs.
/// Heuristic selectivities in the absence of column statistics:
///   equality predicate 0.1, range predicate 1/3, other predicates 1/2,
///   equi-join |L|*|R| * 0.01 (capped below by max input), aggregate
///   |input|^0.75 groups, distinct 0.5.
class CostModel {
 public:
  explicit CostModel(Catalog* catalog) : catalog_(catalog) {}

  /// Estimated output rows of a plan.
  double EstimateCardinality(const LogicalOp& plan) const;

  /// Estimated cost (total rows flowing through all operators — the C_out
  /// model) of one plan.
  double EstimatePlanCost(const LogicalOp& plan) const;

  /// Estimated iterations a loop will run. Metadata conditions are exact
  /// (or derived from the CTE's estimated size for UNTIL n UPDATES); Data /
  /// Delta / recursive conditions fall back to `default_iterations`.
  double EstimateIterations(const LoopSpec& spec, double cte_rows,
                            double default_iterations = 10.0) const;

  /// Estimated total cost of a program: plan-bearing steps cost their plan,
  /// Rename costs ~0, MergeUpdate costs the CTE size; steps between an
  /// InitLoop and its LoopCheck are weighted by the loop's estimated
  /// iteration count.
  double EstimateProgramCost(const Program& program) const;

  /// Human-readable per-step cost breakdown (EXPLAIN COST style).
  std::string ExplainCost(const Program& program) const;

 private:
  double ScanRows(const LogicalOp& scan) const;

  Catalog* catalog_;
};

}  // namespace dbspinner
