// Rule-based optimizer.
//
// The cost-based parts of a production optimizer (join ordering, statistics)
// are untouched by the paper's proposal — it explicitly reuses them. Our
// engine correspondingly keeps physical planning trivial and implements the
// rewrites the paper discusses:
//   - constant folding (stock rule)
//   - outer->inner join conversion ("outer to inner join conversions", §V)
//   - predicate pushdown within a block (stock rule)
//   - predicate pushdown from Qf into R0 of an iterative CTE (§V-B, Fig 10)
//   - common-result extraction out of Ri (§V-A, Fig 9)

#pragma once

#include <functional>

#include "common/status.h"
#include "engine/options.h"
#include "plan/program.h"
#include "storage/catalog.h"

namespace dbspinner {

class Optimizer {
 public:
  /// Observer invoked after each enabled rewrite rule finishes transforming
  /// the program, with the rule's stable name (matching OptimizerToggles).
  /// A non-OK return aborts optimization with that status. The static
  /// verifier hooks in here to check every intermediate program.
  using RuleHook = std::function<Status(const char* rule, const Program&)>;

  /// `catalog` (optional) enables cardinality-based decisions: with it, the
  /// common-result rewrite is skipped for loops estimated to run <= 1
  /// iteration, where materialization cannot pay off (the paper's §IX
  /// future-work costing).
  explicit Optimizer(const OptimizerOptions& options,
                     Catalog* catalog = nullptr)
      : options_(options), catalog_(catalog) {}

  void set_rule_hook(RuleHook hook) { rule_hook_ = std::move(hook); }

  /// Applies all enabled rewrites to every plan in the program, plus the
  /// cross-step iterative-CTE rewrites. Rules run as named program-wide
  /// passes; the rule hook (if any) fires after each one.
  Status OptimizeProgram(Program* program);

  /// Applies the enabled local (single-plan) rules. Used for standalone
  /// plans (UPDATE ... FROM) and by rewrites on freshly built subplans; does
  /// not fire the rule hook.
  Status OptimizePlan(LogicalOpPtr* plan);

 private:
  /// Applies one local rule to every step plan of the program.
  Status ApplyLocalRule(Program* program,
                        const std::function<Status(LogicalOpPtr*)>& rule);
  Status FireHook(const char* rule, const Program& program);

  OptimizerOptions options_;
  Catalog* catalog_;
  RuleHook rule_hook_;
};

// --- individual rules (exposed for tests) -----------------------------------

/// Folds constant subexpressions in every expression of the plan, removes
/// always-true filters, and replaces always-false filters with empty inputs.
Status ConstantFold(LogicalOpPtr* plan);

/// Converts LEFT joins to INNER where a null-rejecting predicate above the
/// join discards NULL-extended rows.
Status SimplifyJoins(LogicalOpPtr* plan);

/// Pushes filter conjuncts below projects, into join inputs / conditions,
/// through unions and distinct, and below aggregates (group columns only).
Status PushDownPredicates(LogicalOpPtr* plan);

/// Fig 10: pushes conjuncts of the main query's filter over the iterative
/// CTE into the CTE's non-iterative part R0, when `info.pushdown_legal` and
/// the predicate only touches pass-through columns.
Status ApplyCtePredicatePushdown(Program* program,
                                 const IterativeCteInfo& info);

/// Fig 9: hoists loop-invariant join components out of the Ri plan,
/// materializing them once before the loop as __common#k results.
/// `local_rules` is applied to each hoisted plan and the rewritten Ri plan.
Status ApplyCommonResultRewrite(Program* program, const IterativeCteInfo& info,
                                int* common_counter, Optimizer* optimizer);

/// Delta-driven (semi-naive) iteration, part 1: legality analysis and plan
/// surgery (delta_analysis.cc). When the Ri plan of `info` has the supported
/// merge-update shape, restricts its driving self-scan to the keys bound as
/// result `affected_name`, adds the carry union on the rename path, and
/// fills `*affected_plan_out` with the plan computing the affected key set
/// from the per-iteration delta `delta_name`. Returns false (and leaves the
/// program untouched) when the shape is not supported.
bool TryPlanDeltaIteration(Program* program, const IterativeCteInfo& info,
                           const std::string& delta_name,
                           const std::string& affected_name, bool rename_path,
                           LogicalOpPtr* affected_plan_out);

}  // namespace dbspinner
