// Predicate pushdown.
//
// Within a block: filters sink below projects, into join inputs and
// conditions, through unions/distinct/sort, and below aggregates when they
// touch only group columns.
//
// Across blocks (Fig 10): a filter applied by the main query Qf on an
// iterative CTE may be evaluated once in R0 instead of after the loop — but
// only when each CTE row evolves independently (no joins, self references, or
// aggregates in Ri) and the filtered columns pass through Ri unchanged.
// Applying it blindly (e.g. to the PR query, where a node's rank needs its
// neighbours) would be incorrect, which is why the rule is restricted
// (§V-B).

#include <functional>

#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

LogicalOpPtr WrapFilter(LogicalOpPtr plan, std::vector<BoundExprPtr> conjs) {
  if (conjs.empty()) return plan;
  return MakeFilter(CombineConjuncts(std::move(conjs)), std::move(plan));
}

// Replaces column references in `expr` with clones of the projection
// expressions they select.
BoundExprPtr SubstituteColumns(BoundExprPtr expr,
                               const std::vector<BoundExprPtr>& projections) {
  if (expr->kind == BoundExprKind::kColumnRef) {
    return projections[expr->column_index]->Clone();
  }
  for (auto& c : expr->children) {
    c = SubstituteColumns(std::move(c), projections);
  }
  return expr;
}

LogicalOpPtr Push(LogicalOpPtr plan, std::vector<BoundExprPtr> pending) {
  LogicalOp* op = plan.get();
  switch (op->kind) {
    case LogicalOpKind::kFilter: {
      SplitConjuncts(*op->predicate, &pending);
      return Push(std::move(op->children[0]), std::move(pending));
    }
    case LogicalOpKind::kProject: {
      std::vector<BoundExprPtr> below;
      below.reserve(pending.size());
      for (auto& c : pending) {
        below.push_back(SubstituteColumns(std::move(c), op->projections));
      }
      op->children[0] = Push(std::move(op->children[0]), std::move(below));
      return plan;
    }
    case LogicalOpKind::kJoin: {
      size_t nleft = op->children[0]->output_schema.num_columns();
      std::vector<BoundExprPtr> below_left, below_right, cond_rest, stay;
      bool inner = op->join_type == JoinType::kInner;
      // Single-side conjuncts of an inner join's condition also sink.
      if (inner && op->join_condition) {
        std::vector<BoundExprPtr> cond_conjs;
        SplitConjuncts(*op->join_condition, &cond_conjs);
        for (auto& c : cond_conjs) pending.push_back(std::move(c));
        op->join_condition = nullptr;
      }
      for (auto& c : pending) {
        if (!c->HasColumnRef()) {
          stay.push_back(std::move(c));
        } else if (c->RefsWithin(0, nleft)) {
          below_left.push_back(std::move(c));
        } else if (c->RefsWithin(nleft, op->output_schema.num_columns())) {
          if (inner) {
            c->ShiftColumns(-static_cast<int64_t>(nleft));
            below_right.push_back(std::move(c));
          } else {
            stay.push_back(std::move(c));
          }
        } else {
          if (inner) {
            cond_rest.push_back(std::move(c));
          } else {
            stay.push_back(std::move(c));
          }
        }
      }
      if (!inner && op->join_condition) {
        // LEFT join keeps its condition untouched.
      }
      if (inner) {
        op->join_condition = cond_rest.empty()
                                 ? nullptr
                                 : CombineConjuncts(std::move(cond_rest));
      }
      op->children[0] = Push(std::move(op->children[0]),
                             std::move(below_left));
      op->children[1] = Push(std::move(op->children[1]),
                             std::move(below_right));
      return WrapFilter(std::move(plan), std::move(stay));
    }
    case LogicalOpKind::kAggregate: {
      size_t ngroups = op->group_exprs.size();
      std::vector<BoundExprPtr> below, stay;
      for (auto& c : pending) {
        if (c->HasColumnRef() && c->RefsWithin(0, ngroups)) {
          // Rewrite group-output refs into the underlying group expressions.
          below.push_back(SubstituteColumns(std::move(c), op->group_exprs));
        } else {
          stay.push_back(std::move(c));
        }
      }
      op->children[0] = Push(std::move(op->children[0]), std::move(below));
      return WrapFilter(std::move(plan), std::move(stay));
    }
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kExcept:
    case LogicalOpKind::kIntersect: {
      // Deterministic predicates commute with all three set operations.
      for (auto& child : op->children) {
        std::vector<BoundExprPtr> clones;
        clones.reserve(pending.size());
        for (const auto& c : pending) clones.push_back(c->Clone());
        child = Push(std::move(child), std::move(clones));
      }
      return plan;
    }
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDeltaRestrict: {
      // DeltaRestrict is itself a pure row filter, so predicates commute.
      op->children[0] = Push(std::move(op->children[0]), std::move(pending));
      return plan;
    }
    case LogicalOpKind::kLimit: {
      // Filtering below a LIMIT changes which rows are kept: stop here.
      op->children[0] = Push(std::move(op->children[0]), {});
      return WrapFilter(std::move(plan), std::move(pending));
    }
    case LogicalOpKind::kScan:
    case LogicalOpKind::kValues:
      return WrapFilter(std::move(plan), std::move(pending));
  }
  return WrapFilter(std::move(plan), std::move(pending));
}

}  // namespace

Status PushDownPredicates(LogicalOpPtr* plan) {
  *plan = Push(std::move(*plan), {});
  return Status::OK();
}

Status ApplyCtePredicatePushdown(Program* program,
                                 const IterativeCteInfo& info) {
  // Find the final step and, within it, a Filter over a scan of the CTE.
  int final_idx = -1;
  for (size_t i = 0; i < program->steps.size(); ++i) {
    if (program->steps[i].kind == Step::Kind::kFinal) {
      final_idx = static_cast<int>(i);
    }
  }
  if (final_idx < 0) return Status::OK();
  LogicalOpPtr& final_plan = program->steps[static_cast<size_t>(final_idx)].plan;

  // Walk for Filter(Scan(result:cte)) or Filter(Join(leftmost Scan(cte))).
  std::vector<BoundExprPtr> pushable;
  std::function<void(LogicalOp*)> walk = [&](LogicalOp* op) {
    if (op->kind == LogicalOpKind::kFilter) {
      LogicalOp* child = op->children[0].get();
      // Accept a direct scan, or a join tree whose leftmost leaf is the scan
      // (the CTE's columns are then ordinals [0, width)).
      LogicalOp* leftmost = child;
      while (leftmost->kind == LogicalOpKind::kJoin) {
        leftmost = leftmost->children[0].get();
      }
      bool over_cte = leftmost->kind == LogicalOpKind::kScan &&
                      leftmost->scan_source == ScanSource::kResult &&
                      leftmost->scan_name == info.cte_name &&
                      (child == leftmost ||
                       child->kind == LogicalOpKind::kJoin);
      if (over_cte) {
        std::vector<BoundExprPtr> conjuncts;
        SplitConjuncts(*op->predicate, &conjuncts);
        for (auto& c : conjuncts) {
          if (!c->HasColumnRef()) continue;
          bool ok = true;
          std::vector<size_t> refs;
          c->CollectColumnRefs(&refs);
          for (size_t r : refs) {
            if (r >= info.pass_through.size() || !info.pass_through[r]) {
              ok = false;
              break;
            }
          }
          if (ok) pushable.push_back(c->Clone());
        }
      }
    }
    for (auto& c : op->children) walk(c.get());
  };
  walk(final_plan.get());
  if (pushable.empty()) return Status::OK();

  // Wrap R0's plan: the predicate's ordinals are CTE-schema positions, which
  // equal R0's output positions. The original filter in Qf is kept (it is
  // now a cheap no-op), preserving correctness even for borderline cases.
  int r0_idx = program->FindStep(info.r0_step_id);
  if (r0_idx < 0) return Status::Internal("R0 step not found");
  Step& r0 = program->steps[static_cast<size_t>(r0_idx)];
  r0.plan = MakeFilter(CombineConjuncts(std::move(pushable)),
                       std::move(r0.plan));
  r0.comment += " [predicate pushed down from Qf]";
  return Status::OK();
}

}  // namespace dbspinner
