// Outer -> inner join conversion.
//
// A LEFT JOIN followed by a predicate that can never be TRUE on the
// NULL-extended rows of its right side behaves exactly like an INNER join.
// The paper lists this stock rewrite ("outer to inner join conversions") as
// one the optimizer applies unchanged to rewritten iterative queries; it is
// also what unlocks common-result extraction on the PR-VS / SSSP-VS queries,
// whose join with vertexStatus null-rejects the edges columns of the LEFT
// JOIN below it.

#include <algorithm>

#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

// `nr` holds column ordinals (in `op`'s output space) that some ancestor
// predicate null-rejects.
void Simplify(LogicalOp* op, std::vector<size_t> nr) {
  switch (op->kind) {
    case LogicalOpKind::kFilter: {
      std::vector<size_t> own = NullRejectedColumns(*op->predicate);
      nr.insert(nr.end(), own.begin(), own.end());
      Simplify(op->children[0].get(), std::move(nr));
      return;
    }
    case LogicalOpKind::kProject: {
      // Translate output ordinals through the projection expressions: if the
      // projection of a null-rejected output column is strict in an input
      // column, that input column is null-rejected too.
      std::vector<size_t> translated;
      for (size_t out_col : nr) {
        std::vector<size_t> strict =
            NullRejectedColumns(*op->projections[out_col]);
        translated.insert(translated.end(), strict.begin(), strict.end());
      }
      Simplify(op->children[0].get(), std::move(translated));
      return;
    }
    case LogicalOpKind::kJoin: {
      size_t nleft = op->children[0]->output_schema.num_columns();
      size_t ntotal = op->output_schema.num_columns();
      if (op->join_type == JoinType::kLeft) {
        bool rejects_right = std::any_of(
            nr.begin(), nr.end(),
            [&](size_t c) { return c >= nleft && c < ntotal; });
        if (rejects_right) op->join_type = JoinType::kInner;
      }
      if (op->join_type == JoinType::kInner && op->join_condition) {
        std::vector<size_t> own = NullRejectedColumns(*op->join_condition);
        nr.insert(nr.end(), own.begin(), own.end());
      }
      std::vector<size_t> left_nr, right_nr;
      for (size_t c : nr) {
        if (c < nleft) {
          left_nr.push_back(c);
        } else if (c < ntotal && op->join_type == JoinType::kInner) {
          // For a (still) LEFT join, predicates above do not filter the
          // right input's rows, so nothing propagates into it.
          right_nr.push_back(c - nleft);
        }
      }
      Simplify(op->children[0].get(), std::move(left_nr));
      Simplify(op->children[1].get(), std::move(right_nr));
      return;
    }
    case LogicalOpKind::kUnionAll:
    case LogicalOpKind::kExcept:
    case LogicalOpKind::kIntersect:
      for (auto& c : op->children) Simplify(c.get(), nr);
      return;
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kLimit:
    case LogicalOpKind::kDeltaRestrict:
      Simplify(op->children[0].get(), std::move(nr));
      return;
    case LogicalOpKind::kAggregate:
      // Grouping changes row identity; do not propagate through.
      Simplify(op->children[0].get(), {});
      return;
    case LogicalOpKind::kScan:
    case LogicalOpKind::kValues:
      return;
  }
}

}  // namespace

Status SimplifyJoins(LogicalOpPtr* plan) {
  Simplify(plan->get(), {});
  return Status::OK();
}

}  // namespace dbspinner
