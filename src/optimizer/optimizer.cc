#include "optimizer/optimizer.h"

#include "optimizer/cost_model.h"
#include "rewrite/iterative_rewrite.h"

namespace dbspinner {

namespace {

// Loops predicted to run at most once cannot amortize the per-iteration
// delta/affected bookkeeping (same gate as the common-result rewrite).
bool LoopWorthRewriting(const Program& program, const IterativeCteInfo& info,
                        const CostModel& cost) {
  int init_idx = program.FindStep(info.init_step_id);
  if (init_idx < 0) return false;
  const Step& init = program.steps[static_cast<size_t>(init_idx)];
  int r0_idx = program.FindStep(info.r0_step_id);
  double cte_rows =
      r0_idx >= 0 && program.steps[static_cast<size_t>(r0_idx)].plan
          ? cost.EstimateCardinality(
                *program.steps[static_cast<size_t>(r0_idx)].plan)
          : 0.0;
  return cost.EstimateIterations(init.loop, cte_rows) > 1.0;
}

}  // namespace

Status Optimizer::OptimizePlan(LogicalOpPtr* plan) {
  if (options_.enable_constant_folding) {
    DBSP_RETURN_NOT_OK(ConstantFold(plan));
  }
  if (options_.enable_join_simplification) {
    DBSP_RETURN_NOT_OK(SimplifyJoins(plan));
  }
  if (options_.enable_predicate_pushdown) {
    DBSP_RETURN_NOT_OK(PushDownPredicates(plan));
  }
  return Status::OK();
}

Status Optimizer::ApplyLocalRule(
    Program* program, const std::function<Status(LogicalOpPtr*)>& rule) {
  for (Step& step : program->steps) {
    if (step.plan) {
      DBSP_RETURN_NOT_OK(rule(&step.plan));
    }
  }
  return Status::OK();
}

Status Optimizer::FireHook(const char* rule, const Program& program) {
  if (!rule_hook_) return Status::OK();
  return rule_hook_(rule, program);
}

Status Optimizer::OptimizeProgram(Program* program) {
  // 1. Cross-block pushdown first, so pushed predicates can sink further
  //    inside R0 during the local passes below.
  if (options_.enable_cte_predicate_pushdown) {
    for (const IterativeCteInfo& info : program->iterative_ctes) {
      if (info.pushdown_legal) {
        DBSP_RETURN_NOT_OK(ApplyCtePredicatePushdown(program, info));
      }
    }
    DBSP_RETURN_NOT_OK(FireHook("cte_predicate_pushdown", *program));
  }
  // 2. Local rules, each as a named program-wide pass over every step plan.
  if (options_.enable_constant_folding) {
    DBSP_RETURN_NOT_OK(ApplyLocalRule(program, ConstantFold));
    DBSP_RETURN_NOT_OK(FireHook("constant_folding", *program));
  }
  if (options_.enable_join_simplification) {
    DBSP_RETURN_NOT_OK(ApplyLocalRule(program, SimplifyJoins));
    DBSP_RETURN_NOT_OK(FireHook("join_simplification", *program));
  }
  if (options_.enable_predicate_pushdown) {
    DBSP_RETURN_NOT_OK(ApplyLocalRule(program, PushDownPredicates));
    DBSP_RETURN_NOT_OK(FireHook("predicate_pushdown", *program));
  }
  // 3. Common-result extraction (wants simplified/pushed-down Ri plans).
  //    Cost guard: a loop predicted to run at most once cannot amortize the
  //    hoisted materialization, so skip it (paper §IX future work).
  if (options_.enable_common_result) {
    CostModel cost(catalog_);
    int counter = 0;
    for (const IterativeCteInfo& info : program->iterative_ctes) {
      if (!LoopWorthRewriting(*program, info, cost)) continue;
      DBSP_RETURN_NOT_OK(
          ApplyCommonResultRewrite(program, info, &counter, this));
    }
    DBSP_RETURN_NOT_OK(FireHook("common_result", *program));
  }
  // 4. Delta-driven (semi-naive) iteration, after common results so hoisted
  //    __common#k scans count as loop-invariant inputs of the region.
  if (options_.enable_delta_iteration) {
    CostModel cost(catalog_);
    for (const IterativeCteInfo& info : program->iterative_ctes) {
      if (!LoopWorthRewriting(*program, info, cost)) continue;
      DBSP_RETURN_NOT_OK(ApplyDeltaIterationRewrite(program, info, this));
    }
    DBSP_RETURN_NOT_OK(FireHook("delta_iteration", *program));
  }
  return Status::OK();
}

}  // namespace dbspinner
