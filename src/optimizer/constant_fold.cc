// Constant folding and boolean simplification.

#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

bool IsConstTrue(const BoundExpr& e) {
  return e.kind == BoundExprKind::kConstant && !e.constant.is_null() &&
         e.constant.type() == TypeId::kBool && e.constant.bool_value();
}
bool IsConstFalseOrNull(const BoundExpr& e) {
  if (e.kind != BoundExprKind::kConstant) return false;
  if (e.constant.is_null()) return true;
  return e.constant.type() == TypeId::kBool && !e.constant.bool_value();
}

// Folds one expression tree bottom-up. Returns the (possibly replaced) node.
BoundExprPtr FoldExpr(BoundExprPtr expr) {
  for (auto& c : expr->children) c = FoldExpr(std::move(c));

  // Boolean shortcuts keep partially-constant predicates cheap.
  if (expr->kind == BoundExprKind::kBinaryOp) {
    if (expr->binary_op == BinaryOp::kAnd) {
      if (IsConstTrue(*expr->children[0])) return std::move(expr->children[1]);
      if (IsConstTrue(*expr->children[1])) return std::move(expr->children[0]);
      if (IsConstFalseOrNull(*expr->children[0]) &&
          !expr->children[0]->constant.is_null()) {
        return MakeBoundConstant(Value::Bool(false));
      }
      if (IsConstFalseOrNull(*expr->children[1]) &&
          !expr->children[1]->constant.is_null()) {
        return MakeBoundConstant(Value::Bool(false));
      }
    } else if (expr->binary_op == BinaryOp::kOr) {
      if (IsConstTrue(*expr->children[0]) || IsConstTrue(*expr->children[1])) {
        return MakeBoundConstant(Value::Bool(true));
      }
      if (expr->children[0]->kind == BoundExprKind::kConstant &&
          !expr->children[0]->constant.is_null() &&
          !expr->children[0]->constant.bool_value()) {
        return std::move(expr->children[1]);
      }
      if (expr->children[1]->kind == BoundExprKind::kConstant &&
          !expr->children[1]->constant.is_null() &&
          !expr->children[1]->constant.bool_value()) {
        return std::move(expr->children[0]);
      }
    }
  }

  if (expr->kind == BoundExprKind::kConstant ||
      expr->kind == BoundExprKind::kColumnRef || expr->HasColumnRef()) {
    return expr;
  }
  // Pure-constant subtree: evaluate once. Evaluation errors (e.g. division
  // by zero) are deferred to runtime by leaving the node unfolded.
  static const TablePtr kEmpty = Table::Make(Schema());
  Result<Value> v = EvaluateExpr(*expr, *kEmpty, 0);
  if (!v.ok()) return expr;
  Result<Value> cast = v->CastTo(expr->type);
  if (!cast.ok()) return expr;
  return MakeBoundConstant(std::move(cast).value());
}

void FoldAllExprs(LogicalOp* op) {
  if (op->predicate) op->predicate = FoldExpr(std::move(op->predicate));
  for (auto& p : op->projections) p = FoldExpr(std::move(p));
  if (op->join_condition) {
    op->join_condition = FoldExpr(std::move(op->join_condition));
  }
  for (auto& g : op->group_exprs) g = FoldExpr(std::move(g));
  for (auto& a : op->aggregates) {
    if (a.arg) a.arg = FoldExpr(std::move(a.arg));
  }
  for (auto& k : op->sort_keys) k.expr = FoldExpr(std::move(k.expr));
}

void FoldPlan(LogicalOpPtr* plan) {
  for (auto& c : (*plan)->children) FoldPlan(&c);
  FoldAllExprs(plan->get());

  LogicalOp* op = plan->get();
  if (op->kind == LogicalOpKind::kFilter) {
    if (IsConstTrue(*op->predicate)) {
      *plan = std::move(op->children[0]);
      return;
    }
    if (IsConstFalseOrNull(*op->predicate)) {
      // Replace with an empty relation of the same schema.
      auto empty = std::make_unique<LogicalOp>();
      empty->kind = LogicalOpKind::kValues;
      empty->output_schema = op->output_schema;
      *plan = std::move(empty);
      return;
    }
  }
}

}  // namespace

Status ConstantFold(LogicalOpPtr* plan) {
  FoldPlan(plan);
  return Status::OK();
}

}  // namespace dbspinner
