// Common-result extraction (§V-A, Fig 5, Fig 9).
//
// Inside the iterative part Ri, joins between relations that do not involve
// the iterative reference produce the same result every iteration. This
// rewrite finds maximal inner-join regions of the Ri plan, groups the
// loop-invariant relations connected by join predicates, and hoists each
// group as a __common#k materialization placed before the loop. The region
// is rebuilt with a single scan of the materialized result, and a trailing
// Project restores the original column order so parent operators are
// untouched.
//
// Implemented as a heuristic (not cost-based) rewrite, as the paper argues:
// iterative CTEs materialize intermediate results anyway, and the hoisted
// work is saved once per iteration.

#include <algorithm>
#include <functional>
#include <numeric>

#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

// A relation of a flattened inner-join region.
struct RegionRel {
  LogicalOpPtr subtree;   // moved out of the plan during rewrite
  const LogicalOp* view;  // analysis pointer (valid before the move)
  size_t start = 0;       // first ordinal in the region root's output
  size_t width = 0;
  bool hoistable = false;
  int component = -1;     // union-find result; -1 = not hoisted
};

bool SubtreeIsLoopInvariant(const LogicalOp& op) {
  if (op.kind == LogicalOpKind::kScan &&
      op.scan_source == ScanSource::kResult) {
    return false;  // reads a CTE/working table: may change across iterations
  }
  for (const auto& c : op.children) {
    if (!SubtreeIsLoopInvariant(*c)) return false;
  }
  return true;
}

bool IsInnerJoin(const LogicalOp& op) {
  return op.kind == LogicalOpKind::kJoin && op.join_type == JoinType::kInner;
}

// Analysis flatten: collects relation views and join conjuncts (re-based to
// the region root's ordinal space) without modifying the tree.
void FlattenView(const LogicalOp& node, size_t base,
                 std::vector<RegionRel>* rels,
                 std::vector<BoundExprPtr>* conjuncts) {
  if (IsInnerJoin(node)) {
    size_t left_width = node.children[0]->output_schema.num_columns();
    FlattenView(*node.children[0], base, rels, conjuncts);
    FlattenView(*node.children[1], base + left_width, rels, conjuncts);
    if (node.join_condition) {
      std::vector<BoundExprPtr> cs;
      SplitConjuncts(*node.join_condition, &cs);
      for (auto& c : cs) {
        c->ShiftColumns(static_cast<int64_t>(base));
        conjuncts->push_back(std::move(c));
      }
    }
    return;
  }
  RegionRel rel;
  rel.view = &node;
  rel.start = base;
  rel.width = node.output_schema.num_columns();
  rel.hoistable = SubtreeIsLoopInvariant(node);
  rels->push_back(std::move(rel));
}

// Destructive flatten: must visit relations in the same order as
// FlattenView. Moves each relation subtree into `rels[i].subtree`.
void FlattenTake(LogicalOpPtr node, size_t* next_rel,
                 std::vector<RegionRel>* rels) {
  if (IsInnerJoin(*node)) {
    FlattenTake(std::move(node->children[0]), next_rel, rels);
    FlattenTake(std::move(node->children[1]), next_rel, rels);
    return;
  }
  (*rels)[(*next_rel)++].subtree = std::move(node);
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

// Which relations does this conjunct touch?
std::vector<size_t> TouchedRels(const BoundExpr& conjunct,
                                const std::vector<RegionRel>& rels) {
  std::vector<size_t> refs;
  conjunct.CollectColumnRefs(&refs);
  std::vector<size_t> touched;
  for (size_t r : refs) {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (r >= rels[i].start && r < rels[i].start + rels[i].width) {
        if (touched.empty() || touched.back() != i) {
          bool seen = false;
          for (size_t t : touched) {
            if (t == i) seen = true;
          }
          if (!seen) touched.push_back(i);
        }
        break;
      }
    }
  }
  return touched;
}

LogicalOpPtr CrossJoinChain(std::vector<LogicalOpPtr> rels) {
  LogicalOpPtr chain = std::move(rels[0]);
  for (size_t i = 1; i < rels.size(); ++i) {
    auto join = std::make_unique<LogicalOp>();
    join->kind = LogicalOpKind::kJoin;
    join->join_type = JoinType::kInner;
    Schema schema = chain->output_schema;
    for (const auto& col : rels[i]->output_schema.columns()) {
      schema.AddColumn(col.name, col.type);
    }
    join->output_schema = std::move(schema);
    join->children.push_back(std::move(chain));
    join->children.push_back(std::move(rels[i]));
    chain = std::move(join);
  }
  return chain;
}

struct HoistedPlan {
  std::string name;
  LogicalOpPtr plan;
};

// Attempts to rewrite the inner-join region rooted at `*node`. Appends any
// hoisted common plans to `hoisted`.
Status TryHoistRegion(LogicalOpPtr* node, int* common_counter,
                      std::vector<HoistedPlan>* hoisted) {
  // --- analysis pass ---
  std::vector<RegionRel> rels;
  std::vector<BoundExprPtr> conjuncts;
  FlattenView(**node, 0, &rels, &conjuncts);
  if (rels.size() < 2) return Status::OK();

  UnionFind uf(rels.size());
  for (const auto& c : conjuncts) {
    std::vector<size_t> touched = TouchedRels(*c, rels);
    bool all_hoistable = !touched.empty();
    for (size_t t : touched) {
      if (!rels[t].hoistable) all_hoistable = false;
    }
    if (all_hoistable && touched.size() >= 2) {
      for (size_t i = 1; i < touched.size(); ++i) {
        uf.Union(static_cast<int>(touched[0]), static_cast<int>(touched[i]));
      }
    }
  }
  // Components of hoistable relations with >= 2 members get hoisted.
  std::vector<int> component_of(rels.size(), -1);
  std::vector<std::vector<size_t>> components;
  {
    std::vector<int> root_to_comp(rels.size(), -1);
    std::vector<int> root_count(rels.size(), 0);
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].hoistable) ++root_count[uf.Find(static_cast<int>(i))];
    }
    for (size_t i = 0; i < rels.size(); ++i) {
      if (!rels[i].hoistable) continue;
      int root = uf.Find(static_cast<int>(i));
      if (root_count[root] < 2) continue;
      if (root_to_comp[root] < 0) {
        root_to_comp[root] = static_cast<int>(components.size());
        components.emplace_back();
      }
      component_of[i] = root_to_comp[root];
      components[static_cast<size_t>(root_to_comp[root])].push_back(i);
    }
  }
  if (components.empty()) return Status::OK();

  size_t total_width = 0;
  for (const auto& r : rels) total_width += r.width;

  // --- destructive pass ---
  size_t next_rel = 0;
  FlattenTake(std::move(*node), &next_rel, &rels);

  // The rebuilt region consists of "entries": the non-hoisted relations
  // (singletons) plus one common-result scan per component.
  struct NewRel {
    LogicalOpPtr plan;
    std::vector<size_t> old_rels;        // flatten indices covered
    std::vector<size_t> member_offsets;  // offset of each old rel within plan
    size_t width = 0;
  };
  std::vector<NewRel> entries;
  for (size_t i = 0; i < rels.size(); ++i) {
    if (component_of[i] >= 0) continue;
    NewRel e;
    e.plan = std::move(rels[i].subtree);
    e.old_rels = {i};
    e.member_offsets = {0};
    e.width = rels[i].width;
    entries.push_back(std::move(e));
  }
  for (size_t c = 0; c < components.size(); ++c) {
    std::string name = "__common#" + std::to_string(++(*common_counter));
    NewRel e;
    Schema common_schema;
    std::vector<LogicalOpPtr> member_plans;
    for (size_t m : components[c]) {
      e.old_rels.push_back(m);
      e.member_offsets.push_back(e.width);
      for (const auto& col : rels[m].subtree->output_schema.columns()) {
        common_schema.AddColumn(col.name, col.type);
      }
      e.width += rels[m].width;
      member_plans.push_back(std::move(rels[m].subtree));
    }
    // Build the hoisted plan: cross-join chain + intra-component conjuncts
    // (the within-block pushdown shapes these into hash joins; components
    // are connected by construction, so every join gets a condition).
    LogicalOpPtr common_plan = CrossJoinChain(std::move(member_plans));
    std::vector<BoundExprPtr> intra;
    for (auto& conj : conjuncts) {
      if (!conj) continue;
      std::vector<size_t> touched = TouchedRels(*conj, rels);
      bool all_in_comp = !touched.empty();
      for (size_t t : touched) {
        if (component_of[t] != static_cast<int>(c)) all_in_comp = false;
      }
      if (all_in_comp) {
        // Remap from region space to component space.
        std::vector<size_t> comp_map(total_width, 0);
        for (size_t mi = 0; mi < e.old_rels.size(); ++mi) {
          size_t m = e.old_rels[mi];
          for (size_t k = 0; k < rels[m].width; ++k) {
            comp_map[rels[m].start + k] = e.member_offsets[mi] + k;
          }
        }
        conj->RemapColumns(comp_map);
        intra.push_back(std::move(conj));
      }
    }
    if (!intra.empty()) {
      common_plan = MakeFilter(CombineConjuncts(std::move(intra)),
                               std::move(common_plan));
    }
    hoisted->push_back(HoistedPlan{name, std::move(common_plan)});
    e.plan = MakeScan(ScanSource::kResult, name, common_schema);
    entries.push_back(std::move(e));
  }

  // Order entries greedily by join connectivity so the rebuilt chain never
  // introduces a cross join where a join predicate exists: each appended
  // entry shares at least one remaining conjunct with the entries already
  // in the chain (when possible).
  std::vector<std::vector<size_t>> conj_entries;  // entries each conjunct touches
  for (const auto& conj : conjuncts) {
    std::vector<size_t> touched_entries;
    if (conj) {
      std::vector<size_t> touched = TouchedRels(*conj, rels);
      for (size_t e = 0; e < entries.size(); ++e) {
        for (size_t m : entries[e].old_rels) {
          if (std::find(touched.begin(), touched.end(), m) != touched.end()) {
            touched_entries.push_back(e);
            break;
          }
        }
      }
    }
    conj_entries.push_back(std::move(touched_entries));
  }
  std::vector<size_t> order;
  std::vector<bool> used(entries.size(), false);
  order.push_back(0);
  used[0] = true;
  while (order.size() < entries.size()) {
    size_t pick = entries.size();
    for (const auto& te : conj_entries) {
      bool touches_used = false;
      size_t unused_candidate = entries.size();
      for (size_t e : te) {
        if (used[e]) {
          touches_used = true;
        } else {
          unused_candidate = e;
        }
      }
      if (touches_used && unused_candidate < entries.size()) {
        pick = unused_candidate;
        break;
      }
    }
    if (pick == entries.size()) {
      // Disconnected: fall back to the first unused entry (true cross join).
      for (size_t e = 0; e < entries.size(); ++e) {
        if (!used[e]) {
          pick = e;
          break;
        }
      }
    }
    used[pick] = true;
    order.push_back(pick);
  }

  // Old-ordinal -> new-ordinal mapping induced by the chosen order.
  std::vector<size_t> mapping(total_width, 0);
  size_t cursor = 0;
  std::vector<LogicalOpPtr> chain_plans;
  for (size_t e : order) {
    NewRel& entry = entries[e];
    for (size_t mi = 0; mi < entry.old_rels.size(); ++mi) {
      size_t m = entry.old_rels[mi];
      for (size_t k = 0; k < rels[m].width; ++k) {
        mapping[rels[m].start + k] = cursor + entry.member_offsets[mi] + k;
      }
    }
    cursor += entry.width;
    chain_plans.push_back(std::move(entry.plan));
  }

  LogicalOpPtr rebuilt = CrossJoinChain(std::move(chain_plans));
  std::vector<BoundExprPtr> remaining;
  for (auto& conj : conjuncts) {
    if (!conj) continue;
    conj->RemapColumns(mapping);
    remaining.push_back(std::move(conj));
  }
  if (!remaining.empty()) {
    rebuilt = MakeFilter(CombineConjuncts(std::move(remaining)),
                         std::move(rebuilt));
  }
  // Restore the original column order for the parent.
  std::vector<BoundExprPtr> restore;
  std::vector<std::string> names;
  const Schema& new_schema = rebuilt->output_schema;
  for (size_t old = 0; old < total_width; ++old) {
    size_t nu = mapping[old];
    restore.push_back(MakeBoundColumnRef(nu, new_schema.column(nu).type,
                                         new_schema.column(nu).name));
    names.push_back(new_schema.column(nu).name);
  }
  *node = MakeProject(std::move(restore), std::move(names),
                      std::move(rebuilt));
  return Status::OK();
}

// Finds region roots in post-order; `in_inner_region` tells whether the
// parent was an inner join (then this join belongs to the parent's region).
Status HoistInPlan(LogicalOpPtr* node, int* common_counter,
                   std::vector<HoistedPlan>* hoisted) {
  // Recurse into children first, but skip straight through the spine of an
  // inner-join region (those are handled when the region root rewrites).
  if (IsInnerJoin(**node)) {
    // Recurse into the region's relation subtrees only.
    std::function<Status(LogicalOp*)> recurse_rels =
        [&](LogicalOp* n) -> Status {
      for (auto& c : n->children) {
        if (IsInnerJoin(*c)) {
          DBSP_RETURN_NOT_OK(recurse_rels(c.get()));
        } else {
          DBSP_RETURN_NOT_OK(HoistInPlan(&c, common_counter, hoisted));
        }
      }
      return Status::OK();
    };
    DBSP_RETURN_NOT_OK(recurse_rels(node->get()));
    return TryHoistRegion(node, common_counter, hoisted);
  }
  for (auto& c : (*node)->children) {
    DBSP_RETURN_NOT_OK(HoistInPlan(&c, common_counter, hoisted));
  }
  return Status::OK();
}

}  // namespace

Status ApplyCommonResultRewrite(Program* program, const IterativeCteInfo& info,
                                int* common_counter, Optimizer* optimizer) {
  int ri_idx = program->FindStep(info.ri_step_id);
  if (ri_idx < 0) return Status::OK();
  Step& ri_step = program->steps[static_cast<size_t>(ri_idx)];
  if (!ri_step.plan) return Status::OK();

  std::vector<HoistedPlan> hoisted;
  DBSP_RETURN_NOT_OK(HoistInPlan(&ri_step.plan, common_counter, &hoisted));
  if (hoisted.empty()) return Status::OK();

  DBSP_RETURN_NOT_OK(optimizer->OptimizePlan(&ri_step.plan));
  ri_step.comment += " [common results extracted]";

  for (auto& h : hoisted) {
    DBSP_RETURN_NOT_OK(optimizer->OptimizePlan(&h.plan));
    Step s;
    s.kind = Step::Kind::kMaterialize;
    s.id = program->NewId();
    s.target = h.name;
    s.plan = std::move(h.plan);
    s.comment = "materialize loop-invariant common result '" + h.name + "'";
    program->InsertBefore(info.init_step_id, std::move(s));
  }
  return Status::OK();
}

}  // namespace dbspinner
