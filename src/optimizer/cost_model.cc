#include "optimizer/cost_model.h"

#include <cmath>
#include <map>

#include "common/string_util.h"

namespace dbspinner {

namespace {

// Selectivity heuristic for one predicate (conjuncts multiply).
double PredicateSelectivity(const BoundExpr& pred) {
  switch (pred.kind) {
    case BoundExprKind::kBinaryOp:
      switch (pred.binary_op) {
        case BinaryOp::kAnd:
          return PredicateSelectivity(*pred.children[0]) *
                 PredicateSelectivity(*pred.children[1]);
        case BinaryOp::kOr: {
          double a = PredicateSelectivity(*pred.children[0]);
          double b = PredicateSelectivity(*pred.children[1]);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq:
          return 0.1;
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 1.0 / 3.0;
        default:
          return 0.5;
      }
    case BoundExprKind::kIsNull:
      return pred.negated ? 0.9 : 0.1;
    case BoundExprKind::kIn:
      return std::min(1.0, 0.1 * static_cast<double>(
                                     pred.children.size() - 1));
    case BoundExprKind::kBetween:
      return 0.25;
    case BoundExprKind::kLike:
      return pred.negated ? 0.75 : 0.25;
    case BoundExprKind::kConstant:
      if (!pred.constant.is_null() &&
          pred.constant.type() == TypeId::kBool) {
        return pred.constant.bool_value() ? 1.0 : 0.0;
      }
      return 0.0;
    default:
      return 0.5;
  }
}

}  // namespace

double CostModel::ScanRows(const LogicalOp& scan) const {
  if (scan.scan_source == ScanSource::kCatalog && catalog_ != nullptr) {
    auto entry = const_cast<Catalog*>(catalog_)->Get(scan.scan_name);
    if (entry.ok()) {
      return static_cast<double>((*entry)->table->num_rows());
    }
  }
  // Intermediate results are unknown at plan time; assume moderate size.
  return 1000.0;
}

double CostModel::EstimateCardinality(const LogicalOp& plan) const {
  switch (plan.kind) {
    case LogicalOpKind::kScan:
      return ScanRows(plan);
    case LogicalOpKind::kValues:
      return static_cast<double>(plan.rows.size());
    case LogicalOpKind::kFilter:
      return EstimateCardinality(*plan.children[0]) *
             PredicateSelectivity(*plan.predicate);
    case LogicalOpKind::kProject:
    case LogicalOpKind::kSort:
      return EstimateCardinality(*plan.children[0]);
    case LogicalOpKind::kJoin: {
      double l = EstimateCardinality(*plan.children[0]);
      double r = EstimateCardinality(*plan.children[1]);
      double out;
      if (plan.join_condition == nullptr) {
        out = l * r;  // cross join
      } else {
        out = std::max(std::max(l, r), l * r * 0.01);
      }
      if (plan.join_type == JoinType::kLeft) out = std::max(out, l);
      return out;
    }
    case LogicalOpKind::kAggregate: {
      double in = EstimateCardinality(*plan.children[0]);
      if (plan.group_exprs.empty()) return 1.0;
      return std::max(1.0, std::pow(in, 0.75));
    }
    case LogicalOpKind::kUnionAll: {
      double total = 0;
      for (const auto& c : plan.children) total += EstimateCardinality(*c);
      return total;
    }
    case LogicalOpKind::kExcept:
      return EstimateCardinality(*plan.children[0]) * 0.5;
    case LogicalOpKind::kIntersect:
      return std::min(EstimateCardinality(*plan.children[0]),
                      EstimateCardinality(*plan.children[1])) *
             0.5;
    case LogicalOpKind::kDistinct:
      return EstimateCardinality(*plan.children[0]) * 0.5;
    case LogicalOpKind::kLimit: {
      double in = EstimateCardinality(*plan.children[0]);
      double after_offset = std::max(0.0, in - static_cast<double>(plan.offset));
      if (plan.limit < 0) return after_offset;
      return std::min(after_offset, static_cast<double>(plan.limit));
    }
    case LogicalOpKind::kDeltaRestrict:
      // The whole point of the restriction: a converging loop's frontier is
      // a small fraction of the CTE.
      return EstimateCardinality(*plan.children[0]) * 0.2;
  }
  return 1.0;
}

double CostModel::EstimatePlanCost(const LogicalOp& plan) const {
  double cost = EstimateCardinality(plan);
  for (const auto& c : plan.children) cost += EstimatePlanCost(*c);
  return cost;
}

double CostModel::EstimateIterations(const LoopSpec& spec, double cte_rows,
                                     double default_iterations) const {
  switch (spec.kind) {
    case LoopSpec::Kind::kIterations:
      return static_cast<double>(spec.n);
    case LoopSpec::Kind::kUpdates:
      // Each iteration updates roughly the whole CTE (full replacement) or
      // some fraction of it; assume the whole table as an upper-rate guess.
      if (cte_rows <= 0) return default_iterations;
      return std::max(1.0, std::ceil(static_cast<double>(spec.n) / cte_rows));
    case LoopSpec::Kind::kAny:
    case LoopSpec::Kind::kAll:
    case LoopSpec::Kind::kDeltaLess:
    case LoopSpec::Kind::kWhileResultNonEmpty:
      // Convergence-style conditions: unknowable without data; use the
      // configured default (the paper leaves this as future work).
      return default_iterations;
  }
  return default_iterations;
}

double CostModel::EstimateProgramCost(const Program& program) const {
  // Map loop_id -> iteration estimate (from the InitLoop step) and find the
  // step index ranges [init+1, check] forming each loop body.
  std::map<int, double> loop_iterations;
  std::map<int, std::pair<size_t, size_t>> loop_ranges;
  std::map<std::string, double> result_rows;  // cte name -> estimated rows
  for (size_t i = 0; i < program.steps.size(); ++i) {
    const Step& s = program.steps[i];
    if (s.kind == Step::Kind::kMaterialize && s.plan) {
      result_rows[s.target] = EstimateCardinality(*s.plan);
    }
    if (s.kind == Step::Kind::kInitLoop) {
      double cte_rows = result_rows.count(s.loop.cte_name)
                            ? result_rows[s.loop.cte_name]
                            : 0.0;
      loop_iterations[s.loop_id] = EstimateIterations(s.loop, cte_rows);
      loop_ranges[s.loop_id] = {i + 1, program.steps.size()};
    }
    if (s.kind == Step::Kind::kLoopCheck &&
        loop_ranges.count(s.loop_id)) {
      loop_ranges[s.loop_id].second = i;
    }
  }
  auto weight_of = [&](size_t index) {
    double w = 1.0;
    for (const auto& [id, range] : loop_ranges) {
      if (index >= range.first && index <= range.second) {
        w *= loop_iterations[id];
      }
    }
    return w;
  };

  double total = 0;
  for (size_t i = 0; i < program.steps.size(); ++i) {
    const Step& s = program.steps[i];
    double step_cost = 0;
    switch (s.kind) {
      case Step::Kind::kMaterialize:
      case Step::Kind::kFinal:
        step_cost = s.plan ? EstimatePlanCost(*s.plan) : 0;
        break;
      case Step::Kind::kMergeUpdate:
        step_cost = result_rows.count(s.target) ? result_rows[s.target] : 1000;
        break;
      case Step::Kind::kCopyResult:
      case Step::Kind::kAppendResult:
      case Step::Kind::kDedupeResult:
      case Step::Kind::kComputeDelta:
        step_cost = result_rows.count(s.source) ? result_rows[s.source] : 1000;
        break;
      case Step::Kind::kRename:
      case Step::Kind::kRemoveResult:
      case Step::Kind::kInitLoop:
      case Step::Kind::kLoopCheck:
        step_cost = 1;  // O(1) bookkeeping
        break;
    }
    total += step_cost * weight_of(i);
  }
  return total;
}

std::string CostModel::ExplainCost(const Program& program) const {
  std::string out;
  double total = EstimateProgramCost(program);
  for (size_t i = 0; i < program.steps.size(); ++i) {
    const Step& s = program.steps[i];
    double rows = s.plan ? EstimateCardinality(*s.plan) : 0;
    double cost = s.plan ? EstimatePlanCost(*s.plan) : 1;
    out += StringPrintf("Step %zu (%s): est_rows=%.0f est_cost=%.0f\n", i + 1,
                        s.KindName(), rows, cost);
  }
  out += StringPrintf("Total program cost (loop-weighted): %.0f\n", total);
  return out;
}

}  // namespace dbspinner
