// Delta-driven (semi-naive) iteration: legality analysis and plan surgery.
//
// A merge-update-shaped iterative body recomputes a value per key from the
// CTE's own rows plus loop-invariant inputs. Once the loop starts converging,
// most keys recompute to exactly the value they already carry, so joining the
// full CTE every iteration is wasted work. This rewrite restricts the
// *driving* self-scan of Ri to the keys whose recomputation could differ
// this iteration ("affected keys"):
//
//   affected = keys of rows that changed last iteration (the delta)
//            U keys whose rows *read* a changed row through a secondary
//              self-reference (found by per-secondary dependency joins)
//
// Legality (conservative — bail means "run naive", never "wrong answer"):
//   * tracing the CTE key column from the root of Ri downward through
//     Project (bare column ref), Filter, Distinct and Aggregate (key must be
//     a bare-colref group column) reaches a scan of the CTE — the driving
//     scan — at exactly the CTE's key column, so Ri's output keys are a
//     subset of the current CTE keys and output rows factor by key;
//   * the driving scan is not on the null-padded side of a LEFT join;
//   * every other relation of the join region is either loop-invariant
//     (reads no result written inside any loop body) or a secondary
//     self-reference (a Filter chain over a scan of the CTE);
//   * each secondary's join component (connectivity over conjuncts that do
//     not touch the driving relation) contains no other varying relation,
//     and some equality conjunct links the driving key column to a component
//     column of the same type (the "key link") — it maps changed secondary
//     rows back to the driving keys that read them.
//
// Soundness notes:
//   * the delta carries BOTH versions of a changed row, so a filter above a
//     secondary catches rows that left the filtered set as well as rows that
//     entered it;
//   * dependency joins drop conjuncts that touch the driving relation,
//     which only grows the affected set (a superset of the keys that truly
//     change). Intra-component conjuncts are kept, including LEFT-join ON
//     equalities: any match-set flip under a LEFT join is witnessed by a
//     delta row satisfying the ON condition (the delta has both versions),
//     and pad rows carry NULL link keys which never equal a driving key;
//   * on the rename path working' = restricted Ri UNION ALL carry, where the
//     carry keeps the CTE rows of unaffected keys (their recomputation would
//     reproduce them bit-for-bit, by induction on iterations: the first
//     iteration's delta is the whole CTE, so nothing is carried); on the
//     merge path the merge itself supplies unaffected rows and no carry is
//     needed.

#include <algorithm>
#include <numeric>

#include "common/string_util.h"
#include "optimizer/optimizer.h"

namespace dbspinner {

namespace {

// Result names written inside any loop body of the program: a scan of one of
// these is not loop-invariant. Body ranges are [InitLoop, LoopCheck] of the
// same loop_id; a rename also unbinds its source.
std::vector<std::string> LoopBodyWrittenNames(const Program& program) {
  std::vector<std::string> written;
  for (size_t i = 0; i < program.steps.size(); ++i) {
    if (program.steps[i].kind != Step::Kind::kInitLoop) continue;
    int loop_id = program.steps[i].loop_id;
    for (size_t j = i + 1; j < program.steps.size(); ++j) {
      const Step& s = program.steps[j];
      if (s.kind == Step::Kind::kLoopCheck && s.loop_id == loop_id) break;
      switch (s.kind) {
        case Step::Kind::kMaterialize:
        case Step::Kind::kMergeUpdate:
        case Step::Kind::kAppendResult:
        case Step::Kind::kDedupeResult:
        case Step::Kind::kCopyResult:
        case Step::Kind::kRemoveResult:
        case Step::Kind::kComputeDelta:
          written.push_back(s.target);
          break;
        case Step::Kind::kRename:
          written.push_back(s.target);
          written.push_back(s.source);
          break;
        case Step::Kind::kInitLoop:
        case Step::Kind::kLoopCheck:
        case Step::Kind::kFinal:
          break;
      }
    }
  }
  return written;
}

bool NameInList(const std::string& name,
                const std::vector<std::string>& names) {
  for (const auto& n : names) {
    if (EqualsIgnoreCase(name, n)) return true;
  }
  return false;
}

bool SubtreeInvariant(const LogicalOp& op,
                      const std::vector<std::string>& written) {
  if (op.kind == LogicalOpKind::kScan &&
      op.scan_source == ScanSource::kResult &&
      NameInList(op.scan_name, written)) {
    return false;
  }
  if (op.kind == LogicalOpKind::kDeltaRestrict) return false;
  for (const auto& c : op.children) {
    if (!SubtreeInvariant(*c, written)) return false;
  }
  return true;
}

// Filter chain over Scan(result:`cte`)? Returns the scan, or null.
const LogicalOp* SelfScanOf(const LogicalOp& rel, const std::string& cte) {
  const LogicalOp* n = &rel;
  while (n->kind == LogicalOpKind::kFilter) n = n->children[0].get();
  if (n->kind == LogicalOpKind::kScan &&
      n->scan_source == ScanSource::kResult &&
      EqualsIgnoreCase(n->scan_name, cte)) {
    return n;
  }
  return nullptr;
}

// One relation of the flattened join region at the bottom of Ri's chain.
struct DeltaRel {
  LogicalOpPtr* slot = nullptr;  // owning slot, for surgery
  size_t start = 0;              // first ordinal in region-root space
  size_t width = 0;
  bool null_padded = false;  // right side of some LEFT join
  bool invariant = false;
  bool secondary = false;  // Filter* over Scan(cte), not the driving rel
};

struct DeltaConjunct {
  BoundExprPtr expr;  // rebased to region-root ordinals
  bool from_left_join = false;
};

// Flattens nested joins (INNER and LEFT) into relations + conjuncts, like
// common_result.cc's FlattenView but keeping owning slots and null-padding.
void FlattenRegion(LogicalOpPtr* slot, size_t base, bool padded,
                   std::vector<DeltaRel>* rels,
                   std::vector<DeltaConjunct>* conjuncts) {
  LogicalOp* node = slot->get();
  if (node->kind == LogicalOpKind::kJoin) {
    size_t left_width = node->children[0]->output_schema.num_columns();
    bool left_join = node->join_type == JoinType::kLeft;
    FlattenRegion(&node->children[0], base, padded, rels, conjuncts);
    FlattenRegion(&node->children[1], base + left_width, padded || left_join,
                  rels, conjuncts);
    if (node->join_condition) {
      std::vector<BoundExprPtr> cs;
      SplitConjuncts(*node->join_condition, &cs);
      for (auto& c : cs) {
        c->ShiftColumns(static_cast<int64_t>(base));
        conjuncts->push_back(DeltaConjunct{std::move(c), left_join});
      }
    }
    return;
  }
  DeltaRel rel;
  rel.slot = slot;
  rel.start = base;
  rel.width = node->output_schema.num_columns();
  rel.null_padded = padded;
  rels->push_back(std::move(rel));
}

// Index of the relation owning region ordinal `ord`; rels.size() if none.
size_t RelOfOrdinal(const std::vector<DeltaRel>& rels, size_t ord) {
  for (size_t i = 0; i < rels.size(); ++i) {
    if (ord >= rels[i].start && ord < rels[i].start + rels[i].width) return i;
  }
  return rels.size();
}

// Distinct relation indices referenced by `expr`.
std::vector<size_t> TouchedRels(const BoundExpr& expr,
                                const std::vector<DeltaRel>& rels) {
  std::vector<size_t> refs;
  expr.CollectColumnRefs(&refs);
  std::vector<size_t> touched;
  for (size_t r : refs) {
    size_t i = RelOfOrdinal(rels, r);
    if (i < rels.size() &&
        std::find(touched.begin(), touched.end(), i) == touched.end()) {
      touched.push_back(i);
    }
  }
  return touched;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

LogicalOpPtr CrossJoinChain(std::vector<LogicalOpPtr> rels) {
  LogicalOpPtr chain = std::move(rels[0]);
  for (size_t i = 1; i < rels.size(); ++i) {
    auto join = std::make_unique<LogicalOp>();
    join->kind = LogicalOpKind::kJoin;
    join->join_type = JoinType::kInner;
    Schema schema = chain->output_schema;
    for (const auto& col : rels[i]->output_schema.columns()) {
      schema.AddColumn(col.name, col.type);
    }
    join->output_schema = std::move(schema);
    join->children.push_back(std::move(chain));
    join->children.push_back(std::move(rels[i]));
    chain = std::move(join);
  }
  return chain;
}

// Re-points the Scan(result:`cte`) leaf of a cloned secondary at `delta`.
void RedirectSelfScan(LogicalOp* op, const std::string& cte,
                      const std::string& delta) {
  if (op->kind == LogicalOpKind::kScan &&
      op->scan_source == ScanSource::kResult &&
      EqualsIgnoreCase(op->scan_name, cte)) {
    op->scan_name = ToLower(delta);
    return;
  }
  for (auto& c : op->children) RedirectSelfScan(c.get(), cte, delta);
}

LogicalOpPtr MakeDeltaRestrict(LogicalOpPtr child, std::string source,
                               size_t key_col, bool keep_matching) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kDeltaRestrict;
  op->output_schema = child->output_schema;
  op->delta_source = ToLower(source);
  op->delta_key_col = key_col;
  op->delta_keep_matching = keep_matching;
  op->children.push_back(std::move(child));
  return op;
}

LogicalOpPtr MakeKeyProject(LogicalOpPtr child, size_t ordinal,
                            const std::string& name, TypeId type) {
  std::vector<BoundExprPtr> exprs;
  exprs.push_back(MakeBoundColumnRef(ordinal, type, name));
  return MakeProject(std::move(exprs), {name}, std::move(child));
}

}  // namespace

bool TryPlanDeltaIteration(Program* program, const IterativeCteInfo& info,
                           const std::string& delta_name,
                           const std::string& affected_name, bool rename_path,
                           LogicalOpPtr* affected_plan_out) {
  int ri_idx = program->FindStep(info.ri_step_id);
  if (ri_idx < 0) return false;
  Step& ri_step = program->steps[static_cast<size_t>(ri_idx)];
  if (!ri_step.plan) return false;

  const TypeId key_type = info.cte_schema.column(info.key_col).type;
  const std::string key_name = info.cte_schema.column(info.key_col).name;

  // --- 1. Trace the output key column down to the join region. -------------
  LogicalOpPtr* slot = &ri_step.plan;
  size_t tracked = info.key_col;
  bool at_region = false;
  while (!at_region) {
    LogicalOp* op = slot->get();
    switch (op->kind) {
      case LogicalOpKind::kProject: {
        if (tracked >= op->projections.size()) return false;
        const BoundExpr& e = *op->projections[tracked];
        if (e.kind != BoundExprKind::kColumnRef) return false;
        tracked = e.column_index;
        slot = &op->children[0];
        break;
      }
      case LogicalOpKind::kFilter:
      case LogicalOpKind::kDistinct:
        slot = &op->children[0];
        break;
      case LogicalOpKind::kAggregate: {
        // Output layout is [group columns ++ aggregates]; the key must be a
        // bare group column so groups factor by key.
        if (tracked >= op->group_exprs.size()) return false;
        const BoundExpr& e = *op->group_exprs[tracked];
        if (e.kind != BoundExprKind::kColumnRef) return false;
        tracked = e.column_index;
        slot = &op->children[0];
        break;
      }
      case LogicalOpKind::kJoin:
      case LogicalOpKind::kScan:
        at_region = true;
        break;
      default:
        return false;  // set ops, limit, sort, values: unsupported shapes
    }
  }

  // --- 2. Flatten the region and classify its relations. ------------------
  std::vector<DeltaRel> rels;
  std::vector<DeltaConjunct> conjuncts;
  FlattenRegion(slot, 0, false, &rels, &conjuncts);

  size_t driving = RelOfOrdinal(rels, tracked);
  if (driving >= rels.size()) return false;
  if (rels[driving].null_padded) return false;
  if (tracked - rels[driving].start != info.key_col) return false;
  if (SelfScanOf(*rels[driving].slot->get(), info.cte_name) == nullptr) {
    return false;
  }

  std::vector<std::string> written = LoopBodyWrittenNames(*program);
  std::vector<size_t> secondaries;
  for (size_t i = 0; i < rels.size(); ++i) {
    if (i == driving) continue;
    DeltaRel& rel = rels[i];
    if (SelfScanOf(*rel.slot->get(), info.cte_name) != nullptr) {
      rel.secondary = true;
      secondaries.push_back(i);
    } else if (SubtreeInvariant(*rel.slot->get(), written)) {
      rel.invariant = true;
    } else {
      return false;  // reads some other loop-varying result
    }
  }

  // --- 3. Per-secondary dependency plans. ----------------------------------
  // Connectivity ignores conjuncts touching the driving relation, so the
  // driving rel never joins a secondary's component.
  UnionFind uf(rels.size());
  for (const auto& c : conjuncts) {
    std::vector<size_t> touched = TouchedRels(*c.expr, rels);
    if (std::find(touched.begin(), touched.end(), driving) != touched.end()) {
      continue;
    }
    for (size_t i = 1; i < touched.size(); ++i) {
      uf.Union(static_cast<int>(touched[0]), static_cast<int>(touched[i]));
    }
  }

  const size_t driving_key_ord = rels[driving].start + info.key_col;
  std::vector<LogicalOpPtr> branches;
  {
    // Keys that changed outright.
    auto delta_scan =
        MakeScan(ScanSource::kResult, delta_name, info.cte_schema);
    branches.push_back(MakeKeyProject(std::move(delta_scan), info.key_col,
                                      key_name, key_type));
  }
  for (size_t s : secondaries) {
    int comp = uf.Find(static_cast<int>(s));
    std::vector<size_t> members;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (uf.Find(static_cast<int>(i)) != comp) continue;
      if (i != s && !rels[i].invariant) return false;  // two varying rels
      members.push_back(i);
    }
    auto in_comp = [&](size_t ord) {
      size_t rel = RelOfOrdinal(rels, ord);
      return std::find(members.begin(), members.end(), rel) != members.end();
    };
    // The key link maps component rows back to driving keys.
    size_t link_ord = SIZE_MAX;
    for (const auto& c : conjuncts) {
      const BoundExpr& e = *c.expr;
      if (e.kind != BoundExprKind::kBinaryOp || e.binary_op != BinaryOp::kEq) {
        continue;
      }
      if (e.children[0]->kind != BoundExprKind::kColumnRef ||
          e.children[1]->kind != BoundExprKind::kColumnRef) {
        continue;
      }
      size_t a = e.children[0]->column_index;
      size_t b = e.children[1]->column_index;
      if (a == driving_key_ord && in_comp(b) &&
          e.children[1]->type == key_type) {
        link_ord = b;
        break;
      }
      if (b == driving_key_ord && in_comp(a) &&
          e.children[0]->type == key_type) {
        link_ord = a;
        break;
      }
    }
    if (link_ord == SIZE_MAX) return false;

    // Clone the component with the secondary re-pointed at the delta, keep
    // the intra-component INNER conjuncts, and project the link column.
    size_t total_width = rels.back().start + rels.back().width;
    std::vector<size_t> mapping(total_width, 0);
    std::vector<LogicalOpPtr> clones;
    size_t packed = 0;
    for (size_t m : members) {
      LogicalOpPtr clone = (*rels[m].slot)->Clone();
      if (m == s) RedirectSelfScan(clone.get(), info.cte_name, delta_name);
      for (size_t k = 0; k < rels[m].width; ++k) {
        mapping[rels[m].start + k] = packed + k;
      }
      packed += rels[m].width;
      clones.push_back(std::move(clone));
    }
    LogicalOpPtr dep = CrossJoinChain(std::move(clones));
    std::vector<BoundExprPtr> kept;
    for (const auto& c : conjuncts) {
      // LEFT-join ON conjuncts are kept too: every affected-key event is
      // witnessed by a region output row (in the previous or the current
      // version) that satisfies the ON condition with a delta row — the
      // delta carries both versions of every changed key-group, and pad
      // rows contribute NULL link keys which never equal the driving key.
      // Dropping them instead would be sound but degenerates this branch
      // into a cross product (affected = all keys, at O(|inv| * |delta|)
      // materialization cost per iteration).
      std::vector<size_t> touched = TouchedRels(*c.expr, rels);
      if (touched.empty()) continue;
      bool all_in = true;
      for (size_t t : touched) {
        if (std::find(members.begin(), members.end(), t) == members.end()) {
          all_in = false;
        }
      }
      if (!all_in) continue;
      BoundExprPtr clone = c.expr->Clone();
      clone->RemapColumns(mapping);
      kept.push_back(std::move(clone));
    }
    if (!kept.empty()) {
      dep = MakeFilter(CombineConjuncts(std::move(kept)), std::move(dep));
    }
    branches.push_back(
        MakeKeyProject(std::move(dep), mapping[link_ord], key_name, key_type));
  }

  // --- 4. Assemble the affected-key plan: DISTINCT(branch U ... U branch). -
  LogicalOpPtr affected = std::move(branches[0]);
  for (size_t i = 1; i < branches.size(); ++i) {
    auto u = std::make_unique<LogicalOp>();
    u->kind = LogicalOpKind::kUnionAll;
    u->output_schema = affected->output_schema;
    u->children.push_back(std::move(affected));
    u->children.push_back(std::move(branches[i]));
    affected = std::move(u);
  }
  {
    auto d = std::make_unique<LogicalOp>();
    d->kind = LogicalOpKind::kDistinct;
    d->output_schema = affected->output_schema;
    d->children.push_back(std::move(affected));
    affected = std::move(d);
  }

  // --- 5. Surgery: restrict the driving scan; add the carry on rename. -----
  LogicalOpPtr* scan_slot = rels[driving].slot;
  while ((*scan_slot)->kind == LogicalOpKind::kFilter) {
    scan_slot = &(*scan_slot)->children[0];
  }
  *scan_slot = MakeDeltaRestrict(std::move(*scan_slot), affected_name,
                                 info.key_col, /*keep_matching=*/true);

  if (rename_path) {
    auto carry_scan =
        MakeScan(ScanSource::kResult, info.cte_name, info.cte_schema);
    LogicalOpPtr carry = MakeDeltaRestrict(std::move(carry_scan),
                                           affected_name, info.key_col,
                                           /*keep_matching=*/false);
    auto u = std::make_unique<LogicalOp>();
    u->kind = LogicalOpKind::kUnionAll;
    u->output_schema = ri_step.plan->output_schema;
    u->children.push_back(std::move(ri_step.plan));
    u->children.push_back(std::move(carry));
    ri_step.plan = std::move(u);
  }
  ri_step.comment += " [delta-restricted]";

  *affected_plan_out = std::move(affected);
  return true;
}

}  // namespace dbspinner
