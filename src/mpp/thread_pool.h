// Fixed-size worker pool used by the shared-nothing (MPP) simulation.
//
// Each worker plays the role of one node of the paper's MPP cluster:
// partitioned operators split their input by hash or range, run one task per
// partition on the pool, and concatenate ("gather") the partial results.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbspinner {

class FaultInjector;

/// Work-stealing morsel dispenser (Leis et al.'s morsel-driven parallelism).
///
/// The morsel index space [0, n) is pre-partitioned into `width` contiguous
/// ranges, one per worker slot, so each worker sweeps its own cache-friendly
/// span front-to-back. A worker whose range runs dry steals from the BACK of
/// the fullest remaining range — back-stealing keeps the owner's front
/// contiguous, and picking the fullest victim balances skewed progress.
/// Each range is a single packed 64-bit atomic (head << 32 | end), so claims
/// and steals are lock-free single-CAS operations on the same word.
class MorselQueue {
 public:
  MorselQueue(size_t num_morsels, size_t width);

  /// Claims the next morsel for worker slot `worker`: the front of its own
  /// range, else the back of the fullest other range. Returns false when the
  /// whole queue is drained. `*stolen` is set to true iff the morsel came
  /// from another worker's range.
  bool Pop(size_t worker, size_t* morsel, bool* stolen);

  size_t width() const { return ranges_.size(); }

 private:
  bool PopFront(size_t r, size_t* morsel);
  bool PopBack(size_t r, size_t* morsel);

  struct alignas(64) Range {  // padded: steals must not thrash owners' lines
    std::atomic<uint64_t> bounds{0};
  };
  std::vector<Range> ranges_;
};

/// A minimal fixed-size thread pool with a blocking "run all and wait" API,
/// which is the only pattern the executor needs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs tasks 0..n-1 by calling `fn(i)` across the pool and blocks until
  /// all complete. `fn` must be thread-safe across distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs each task and collects the first non-OK status (if any).
  Status ParallelForStatus(size_t n,
                           const std::function<Status(size_t)>& fn);

  /// As ParallelForStatus, but consults `faults` at injection point `site`
  /// (when non-null) before dispatching each task — the "worker
  /// refused/abandoned the task" failure mode of a real MPP scheduler — and
  /// checks `cancel` (when non-null) so a cancelled query stops launching
  /// work mid-operator. A fired fault or observed cancellation fails that
  /// task with the typed Status and skips `fn` for it; the remaining tasks
  /// still run to completion (the pool drains, nothing leaks).
  Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                           FaultInjector* faults, const char* site,
                           const CancellationToken* cancel = nullptr);

  /// Runs morsels 0..n-1 through a shared MorselQueue drained by `width`
  /// long-lived worker tasks (NOT one pool task per morsel): worker slot `s`
  /// claims morsels and calls `fn(morsel, s)`, so state indexed by slot is
  /// touched by exactly one thread. `width` should be the session's
  /// num_workers — the pool is shared and grow-only, so num_threads() may
  /// exceed what this query is entitled to.
  ///
  /// Per claimed morsel, in order: `cancel` is checked (a cancelled worker
  /// records the status and stops claiming), then `faults` consults `site`
  /// (a fired fault fails that morsel but the queue keeps draining — parity
  /// with the task-per-morsel dispatcher this replaces), then `fn` runs (a
  /// non-OK result also keeps the queue draining). The first non-OK status
  /// wins. Steals observed on successful claims are added to `*stolen_out`
  /// (when non-null) after all workers finish.
  Status ParallelForMorsels(size_t n, size_t width,
                            const std::function<Status(size_t, size_t)>& fn,
                            FaultInjector* faults, const char* site,
                            const CancellationToken* cancel,
                            int64_t* stolen_out);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable_any cv_;  ///< waits directly on mu_
  std::queue<std::function<void()>> tasks_ DBSP_GUARDED_BY(mu_);
  bool shutdown_ DBSP_GUARDED_BY(mu_) = false;
};

}  // namespace dbspinner
