// Fixed-size worker pool used by the shared-nothing (MPP) simulation.
//
// Each worker plays the role of one node of the paper's MPP cluster:
// partitioned operators split their input by hash or range, run one task per
// partition on the pool, and concatenate ("gather") the partial results.

#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace dbspinner {

class FaultInjector;

/// A minimal fixed-size thread pool with a blocking "run all and wait" API,
/// which is the only pattern the executor needs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs tasks 0..n-1 by calling `fn(i)` across the pool and blocks until
  /// all complete. `fn` must be thread-safe across distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs each task and collects the first non-OK status (if any).
  Status ParallelForStatus(size_t n,
                           const std::function<Status(size_t)>& fn);

  /// As ParallelForStatus, but consults `faults` at injection point `site`
  /// (when non-null) before dispatching each task — the "worker
  /// refused/abandoned the task" failure mode of a real MPP scheduler — and
  /// checks `cancel` (when non-null) so a cancelled query stops launching
  /// work mid-operator. A fired fault or observed cancellation fails that
  /// task with the typed Status and skips `fn` for it; the remaining tasks
  /// still run to completion (the pool drains, nothing leaks).
  Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                           FaultInjector* faults, const char* site,
                           const CancellationToken* cancel = nullptr);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
};

}  // namespace dbspinner
