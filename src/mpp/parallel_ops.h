// Node-local parallel kernels over DistributedTables: the building blocks a
// shared-nothing engine composes into distributed plans. Used by the MPP
// tests and the worker-scaling ablation bench; the SQL executor embeds the
// same partition-then-gather pattern directly in its operators.

#pragma once

#include <functional>

#include "common/status.h"
#include "expr/expr.h"
#include "mpp/exchange.h"

namespace dbspinner {

/// Applies a filter predicate on every node in parallel.
Result<DistributedTable> DistributedFilter(const DistributedTable& input,
                                           const BoundExpr& predicate,
                                           ThreadPool* pool);

/// Co-partitioned hash join: shuffles both sides onto the join key, joins
/// node-locally, and returns the distributed result (inner join,
/// single-column keys). Shuffle faults from `faults` surface as typed
/// retryable statuses.
Result<DistributedTable> DistributedHashJoin(const DistributedTable& left,
                                             size_t left_key,
                                             const DistributedTable& right,
                                             size_t right_key,
                                             ThreadPool* pool,
                                             int64_t* rows_shuffled,
                                             FaultInjector* faults = nullptr);

/// Grouped SUM over a single key column and a single value column:
/// shuffle-on-key then node-local aggregation (the two-phase MPP aggregate).
Result<DistributedTable> DistributedSumAggregate(const DistributedTable& input,
                                                 size_t key_col,
                                                 size_t value_col,
                                                 ThreadPool* pool,
                                                 int64_t* rows_shuffled,
                                                 FaultInjector* faults = nullptr);

}  // namespace dbspinner
