#include "mpp/partition.h"

namespace dbspinner {

size_t HashRowKeys(const Table& t, const std::vector<size_t>& key_cols,
                   size_t row) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t c : key_cols) {
    size_t hc = t.column(c).HashAt(row);
    h ^= hc + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<TablePtr> HashPartition(const Table& input,
                                    const std::vector<size_t>& key_cols,
                                    size_t num_partitions) {
  std::vector<std::vector<uint32_t>> selections(num_partitions);
  size_t n = input.num_rows();
  for (auto& s : selections) s.reserve(n / num_partitions + 1);
  for (size_t i = 0; i < n; ++i) {
    size_t p = HashRowKeys(input, key_cols, i) % num_partitions;
    selections[p].push_back(static_cast<uint32_t>(i));
  }
  std::vector<TablePtr> out;
  out.reserve(num_partitions);
  for (const auto& sel : selections) out.push_back(input.Gather(sel));
  return out;
}

std::vector<TablePtr> RangePartition(const Table& input,
                                     size_t num_partitions) {
  size_t n = input.num_rows();
  if (num_partitions == 0) num_partitions = 1;
  size_t chunk = (n + num_partitions - 1) / num_partitions;
  std::vector<TablePtr> out;
  for (size_t start = 0; start < n; start += chunk) {
    size_t end = std::min(n, start + chunk);
    std::vector<uint32_t> sel;
    sel.reserve(end - start);
    for (size_t i = start; i < end; ++i) sel.push_back(static_cast<uint32_t>(i));
    out.push_back(input.Gather(sel));
  }
  if (out.empty()) out.push_back(input.Gather({}));
  return out;
}

TablePtr Gather(const std::vector<TablePtr>& partitions) {
  TablePtr out = Table::Make(partitions.at(0)->schema());
  size_t total = 0;
  for (const auto& p : partitions) total += p->num_rows();
  out->Reserve(total);
  for (const auto& p : partitions) out->AppendAll(*p);
  return out;
}

}  // namespace dbspinner
