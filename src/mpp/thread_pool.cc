#include "mpp/thread_pool.h"

#include <atomic>

#include "common/fault_injection.h"

namespace dbspinner {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining{n};
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      tasks_.push([&, i] {
        fn(i);
        // The decrement must happen under done_mu: if it preceded the lock,
        // the waiter could observe remaining == 0 via a spurious wakeup and
        // destroy done_mu/done_cv (they live on the waiter's stack) while
        // this thread is still about to lock them.
        std::lock_guard<std::mutex> dl(done_mu);
        if (remaining.fetch_sub(1) == 1) done_cv.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> dl(done_mu);
  done_cv.wait(dl, [&] { return remaining.load() == 0; });
}

Status ThreadPool::ParallelForStatus(size_t n,
                                     const std::function<Status(size_t)>& fn) {
  std::mutex status_mu;
  Status first_error = Status::OK();
  ParallelFor(n, [&](size_t i) {
    Status s = fn(i);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      if (first_error.ok()) first_error = std::move(s);
    }
  });
  return first_error;
}

Status ThreadPool::ParallelForStatus(size_t n,
                                     const std::function<Status(size_t)>& fn,
                                     FaultInjector* faults, const char* site,
                                     const CancellationToken* cancel) {
  if (faults == nullptr && (cancel == nullptr || !cancel->live())) {
    return ParallelForStatus(n, fn);
  }
  return ParallelForStatus(n, [&](size_t i) -> Status {
    if (cancel != nullptr) DBSP_RETURN_NOT_OK(cancel->Check());
    if (faults != nullptr) DBSP_RETURN_NOT_OK(faults->MaybeInject(site));
    return fn(i);
  });
}

}  // namespace dbspinner
