#include "mpp/thread_pool.h"

#include <atomic>

#include "common/fault_injection.h"

namespace dbspinner {

namespace {

constexpr uint64_t kHeadShift = 32;
constexpr uint64_t kEndMask = 0xffffffffu;

uint64_t PackRange(uint32_t head, uint32_t end) {
  return (static_cast<uint64_t>(head) << kHeadShift) | end;
}

}  // namespace

MorselQueue::MorselQueue(size_t num_morsels, size_t width) {
  if (width < 1) width = 1;
  if (width > num_morsels && num_morsels > 0) width = num_morsels;
  ranges_ = std::vector<Range>(width);
  // Split [0, n) into `width` contiguous spans, the first n % width spans one
  // morsel longer, so no worker starts more than one morsel behind.
  size_t base = num_morsels / width;
  size_t rem = num_morsels % width;
  size_t begin = 0;
  for (size_t r = 0; r < width; ++r) {
    size_t len = base + (r < rem ? 1 : 0);
    ranges_[r].bounds.store(PackRange(static_cast<uint32_t>(begin),
                                      static_cast<uint32_t>(begin + len)),
                            std::memory_order_relaxed);
    begin += len;
  }
}

bool MorselQueue::PopFront(size_t r, size_t* morsel) {
  uint64_t cur = ranges_[r].bounds.load(std::memory_order_relaxed);
  while (true) {
    uint32_t head = static_cast<uint32_t>(cur >> kHeadShift);
    uint32_t end = static_cast<uint32_t>(cur & kEndMask);
    if (head >= end) return false;
    if (ranges_[r].bounds.compare_exchange_weak(cur, PackRange(head + 1, end),
                                                std::memory_order_acq_rel)) {
      *morsel = head;
      return true;
    }
  }
}

bool MorselQueue::PopBack(size_t r, size_t* morsel) {
  uint64_t cur = ranges_[r].bounds.load(std::memory_order_relaxed);
  while (true) {
    uint32_t head = static_cast<uint32_t>(cur >> kHeadShift);
    uint32_t end = static_cast<uint32_t>(cur & kEndMask);
    if (head >= end) return false;
    if (ranges_[r].bounds.compare_exchange_weak(cur, PackRange(head, end - 1),
                                                std::memory_order_acq_rel)) {
      *morsel = end - 1;
      return true;
    }
  }
}

bool MorselQueue::Pop(size_t worker, size_t* morsel, bool* stolen) {
  size_t own = worker % ranges_.size();
  if (PopFront(own, morsel)) {
    *stolen = false;
    return true;
  }
  // Own range drained: steal from the back of the fullest remaining range.
  // A lost race (victim drained between the scan and the CAS) just rescans.
  while (true) {
    size_t best = ranges_.size();
    uint32_t best_len = 0;
    for (size_t r = 0; r < ranges_.size(); ++r) {
      if (r == own) continue;
      uint64_t cur = ranges_[r].bounds.load(std::memory_order_relaxed);
      uint32_t head = static_cast<uint32_t>(cur >> kHeadShift);
      uint32_t end = static_cast<uint32_t>(cur & kEndMask);
      uint32_t len = end > head ? end - head : 0;
      if (len > best_len) {
        best_len = len;
        best = r;
      }
    }
    if (best == ranges_.size()) return false;
    if (PopBack(best, morsel)) {
      *stolen = true;
      return true;
    }
  }
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(mu_, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining{n};
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      tasks_.push([&, i] {
        fn(i);
        // The decrement must happen under done_mu: if it preceded the lock,
        // the waiter could observe remaining == 0 via a spurious wakeup and
        // destroy done_mu/done_cv (they live on the waiter's stack) while
        // this thread is still about to lock them.
        std::lock_guard<std::mutex> dl(done_mu);
        if (remaining.fetch_sub(1) == 1) done_cv.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> dl(done_mu);
  done_cv.wait(dl, [&] { return remaining.load() == 0; });
}

Status ThreadPool::ParallelForStatus(size_t n,
                                     const std::function<Status(size_t)>& fn) {
  std::mutex status_mu;
  Status first_error = Status::OK();
  ParallelFor(n, [&](size_t i) {
    Status s = fn(i);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(status_mu);
      if (first_error.ok()) first_error = std::move(s);
    }
  });
  return first_error;
}

Status ThreadPool::ParallelForStatus(size_t n,
                                     const std::function<Status(size_t)>& fn,
                                     FaultInjector* faults, const char* site,
                                     const CancellationToken* cancel) {
  if (faults == nullptr && (cancel == nullptr || !cancel->live())) {
    return ParallelForStatus(n, fn);
  }
  return ParallelForStatus(n, [&](size_t i) -> Status {
    if (cancel != nullptr) DBSP_RETURN_NOT_OK(cancel->Check());
    if (faults != nullptr) DBSP_RETURN_NOT_OK(faults->MaybeInject(site));
    return fn(i);
  });
}

Status ThreadPool::ParallelForMorsels(
    size_t n, size_t width, const std::function<Status(size_t, size_t)>& fn,
    FaultInjector* faults, const char* site, const CancellationToken* cancel,
    int64_t* stolen_out) {
  if (n == 0) return Status::OK();
  MorselQueue queue(n, width);
  width = queue.width();

  std::mutex status_mu;
  Status first_error = Status::OK();
  std::atomic<int64_t> stolen_total{0};
  auto record = [&](Status s) {
    std::lock_guard<std::mutex> lock(status_mu);
    if (first_error.ok()) first_error = std::move(s);
  };

  ParallelFor(width, [&](size_t slot) {
    size_t morsel = 0;
    bool stolen = false;
    int64_t stolen_local = 0;
    while (queue.Pop(slot, &morsel, &stolen)) {
      if (stolen) ++stolen_local;
      if (cancel != nullptr) {
        Status c = cancel->Check();
        if (!c.ok()) {
          // Cancelled: this worker stops claiming. Peers observe the same
          // token on their next claim, so the queue winds down promptly
          // without abandoning a morsel mid-kernel.
          record(std::move(c));
          break;
        }
      }
      if (faults != nullptr) {
        Status f = faults->MaybeInject(site);
        if (!f.ok()) {
          // Fault fails this morsel but the queue keeps draining — the same
          // run-to-completion semantics as the task-per-morsel dispatcher.
          record(std::move(f));
          continue;
        }
      }
      Status s = fn(morsel, slot);
      if (!s.ok()) record(std::move(s));
    }
    if (stolen_local > 0) {
      stolen_total.fetch_add(stolen_local, std::memory_order_relaxed);
    }
  });

  if (stolen_out != nullptr) *stolen_out += stolen_total.load();
  return first_error;
}

}  // namespace dbspinner
