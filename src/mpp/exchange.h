// Exchange and DistributedTable: the shared-nothing data-distribution layer.
//
// A DistributedTable models a relation spread across the W nodes of an MPP
// cluster (one partition per simulated node). Exchange::Shuffle re-hashes a
// distributed relation onto a new key — the data-movement step whose cost
// the paper's common-result optimization amortizes by shuffling invariant
// join inputs once instead of every iteration.

#pragma once

#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "mpp/partition.h"
#include "mpp/thread_pool.h"
#include "storage/table.h"

namespace dbspinner {

/// A relation hash- or range-partitioned across simulated nodes.
class DistributedTable {
 public:
  /// Distributes `table` across `num_nodes` by hashing `key_cols` (empty =>
  /// range/round-robin distribution).
  static DistributedTable Distribute(const Table& table,
                                     const std::vector<size_t>& key_cols,
                                     size_t num_nodes);

  /// Wraps already-partitioned data (e.g. the output of node-local
  /// transforms that preserve the existing distribution).
  static DistributedTable FromPartitions(std::vector<TablePtr> partitions,
                                         std::vector<size_t> key_cols);

  size_t num_nodes() const { return partitions_.size(); }
  const TablePtr& partition(size_t i) const { return partitions_[i]; }
  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// Total rows across all nodes.
  size_t TotalRows() const;

  /// Collects all partitions on one node (the MPP gather).
  TablePtr ToTable() const;

 private:
  std::vector<TablePtr> partitions_;
  std::vector<size_t> key_cols_;
};

/// Exchange: moves rows between nodes. Every exchange is fallible: in a real
/// MPP a shuffle can lose a stream mid-flight, so both entry points consult
/// the (optional) fault injector once per receiving node and surface a typed,
/// retryable Status. Exchanges are pure functions of their inputs — they
/// mutate nothing — so re-running a failed exchange is always sound.
class Exchange {
 public:
  /// Re-partitions `input` on `key_cols`. Every row not already on its
  /// target node is counted as shuffled (network traffic in a real MPP).
  /// Runs node-local splits on `pool` when provided. Injection point
  /// "exchange.shuffle" fires once per receiving node.
  static Result<DistributedTable> Shuffle(const DistributedTable& input,
                                          const std::vector<size_t>& key_cols,
                                          ThreadPool* pool,
                                          int64_t* rows_shuffled,
                                          FaultInjector* faults = nullptr);

  /// Broadcast: replicates `table` to every node (small-table joins).
  /// Injection point "exchange.broadcast" fires once per receiving node.
  static Result<std::vector<TablePtr>> Broadcast(const TablePtr& table,
                                                 size_t num_nodes,
                                                 int64_t* rows_shuffled,
                                                 FaultInjector* faults = nullptr);
};

}  // namespace dbspinner
