#include "mpp/parallel_ops.h"

#include <unordered_map>

namespace dbspinner {

Result<DistributedTable> DistributedFilter(const DistributedTable& input,
                                           const BoundExpr& predicate,
                                           ThreadPool* pool) {
  size_t nodes = input.num_nodes();
  std::vector<TablePtr> out(nodes);
  Status first_error = Status::OK();
  std::mutex mu;
  auto task = [&](size_t node) {
    const Table& local = *input.partition(node);
    Result<std::vector<uint32_t>> sel = EvaluatePredicate(predicate, local);
    if (!sel.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = sel.status();
      out[node] = Table::Make(local.schema());
      return;
    }
    out[node] = local.Gather(*sel);
  };
  if (pool != nullptr) {
    pool->ParallelFor(nodes, task);
  } else {
    for (size_t i = 0; i < nodes; ++i) task(i);
  }
  DBSP_RETURN_NOT_OK(first_error);
  return DistributedTable::FromPartitions(std::move(out), input.key_cols());
}

Result<DistributedTable> DistributedHashJoin(const DistributedTable& left,
                                             size_t left_key,
                                             const DistributedTable& right,
                                             size_t right_key,
                                             ThreadPool* pool,
                                             int64_t* rows_shuffled,
                                             FaultInjector* faults) {
  if (left.num_nodes() != right.num_nodes()) {
    return Status::InvalidArgument(
        "DistributedHashJoin requires equal node counts");
  }
  // Shuffle both sides onto their join keys (skipped in a real engine when
  // already co-partitioned; we re-shuffle unconditionally for simplicity,
  // which only over-counts movement).
  DBSP_ASSIGN_OR_RETURN(
      DistributedTable l,
      Exchange::Shuffle(left, {left_key}, pool, rows_shuffled, faults));
  DBSP_ASSIGN_OR_RETURN(
      DistributedTable r,
      Exchange::Shuffle(right, {right_key}, pool, rows_shuffled, faults));

  Schema out_schema = l.partition(0)->schema();
  for (const auto& col : r.partition(0)->schema().columns()) {
    out_schema.AddColumn(col.name, col.type);
  }

  size_t nodes = l.num_nodes();
  std::vector<TablePtr> out(nodes);
  auto task = [&](size_t node) {
    const Table& lt = *l.partition(node);
    const Table& rt = *r.partition(node);
    std::unordered_multimap<size_t, uint32_t> build;
    build.reserve(rt.num_rows());
    for (size_t i = 0; i < rt.num_rows(); ++i) {
      if (rt.column(right_key).IsNull(i)) continue;
      build.emplace(rt.column(right_key).HashAt(i), static_cast<uint32_t>(i));
    }
    auto result = Table::Make(out_schema);
    for (size_t i = 0; i < lt.num_rows(); ++i) {
      if (lt.column(left_key).IsNull(i)) continue;
      size_t h = lt.column(left_key).HashAt(i);
      auto range = build.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        if (!lt.column(left_key).EqualsAt(i, rt.column(right_key),
                                          it->second)) {
          continue;
        }
        std::vector<Value> row;
        row.reserve(out_schema.num_columns());
        for (size_t c = 0; c < lt.num_columns(); ++c) {
          row.push_back(lt.GetValue(i, c));
        }
        for (size_t c = 0; c < rt.num_columns(); ++c) {
          row.push_back(rt.GetValue(it->second, c));
        }
        result->AppendRow(row);
      }
    }
    out[node] = std::move(result);
  };
  if (pool != nullptr) {
    pool->ParallelFor(nodes, task);
  } else {
    for (size_t i = 0; i < nodes; ++i) task(i);
  }
  return DistributedTable::FromPartitions(std::move(out), {left_key});
}

Result<DistributedTable> DistributedSumAggregate(const DistributedTable& input,
                                                 size_t key_col,
                                                 size_t value_col,
                                                 ThreadPool* pool,
                                                 int64_t* rows_shuffled,
                                                 FaultInjector* faults) {
  DBSP_ASSIGN_OR_RETURN(
      DistributedTable shuffled,
      Exchange::Shuffle(input, {key_col}, pool, rows_shuffled, faults));

  const Schema& in_schema = shuffled.partition(0)->schema();
  Schema out_schema;
  out_schema.AddColumn(in_schema.column(key_col).name,
                       in_schema.column(key_col).type);
  out_schema.AddColumn("sum", TypeId::kDouble);

  size_t nodes = shuffled.num_nodes();
  std::vector<TablePtr> out(nodes);
  auto task = [&](size_t node) {
    const Table& local = *shuffled.partition(node);
    std::unordered_multimap<size_t, size_t> index;  // key hash -> group
    std::vector<uint32_t> first_row;
    std::vector<double> sums;
    for (size_t i = 0; i < local.num_rows(); ++i) {
      size_t h = local.column(key_col).HashAt(i);
      size_t g = SIZE_MAX;
      auto range = index.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        if (local.column(key_col).EqualsAt(i, local.column(key_col),
                                           first_row[it->second])) {
          g = it->second;
          break;
        }
      }
      if (g == SIZE_MAX) {
        g = sums.size();
        index.emplace(h, g);
        first_row.push_back(static_cast<uint32_t>(i));
        sums.push_back(0);
      }
      if (!local.column(value_col).IsNull(i)) {
        sums[g] += local.column(value_col).NumericAt(i);
      }
    }
    auto result = Table::Make(out_schema);
    for (size_t g = 0; g < sums.size(); ++g) {
      result->AppendRow({local.GetValue(first_row[g], key_col),
                         Value::Double(sums[g])});
    }
    out[node] = std::move(result);
  };
  if (pool != nullptr) {
    pool->ParallelFor(nodes, task);
  } else {
    for (size_t i = 0; i < nodes; ++i) task(i);
  }
  return DistributedTable::FromPartitions(std::move(out), {0});
}

}  // namespace dbspinner
