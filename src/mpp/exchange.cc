#include "mpp/exchange.h"

namespace dbspinner {

DistributedTable DistributedTable::Distribute(
    const Table& table, const std::vector<size_t>& key_cols,
    size_t num_nodes) {
  DistributedTable out;
  out.key_cols_ = key_cols;
  if (num_nodes == 0) num_nodes = 1;
  if (key_cols.empty()) {
    out.partitions_ = RangePartition(table, num_nodes);
    while (out.partitions_.size() < num_nodes) {
      out.partitions_.push_back(Table::Make(table.schema()));
    }
  } else {
    out.partitions_ = HashPartition(table, key_cols, num_nodes);
  }
  return out;
}

DistributedTable DistributedTable::FromPartitions(
    std::vector<TablePtr> partitions, std::vector<size_t> key_cols) {
  DistributedTable out;
  out.partitions_ = std::move(partitions);
  out.key_cols_ = std::move(key_cols);
  return out;
}

size_t DistributedTable::TotalRows() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->num_rows();
  return total;
}

TablePtr DistributedTable::ToTable() const { return Gather(partitions_); }

Result<DistributedTable> Exchange::Shuffle(const DistributedTable& input,
                                           const std::vector<size_t>& key_cols,
                                           ThreadPool* pool,
                                           int64_t* rows_shuffled,
                                           FaultInjector* faults) {
  size_t nodes = input.num_nodes();
  if (nodes == 0) return DistributedTable::FromPartitions({}, key_cols);
  // Each node splits its local partition by the new key ("send buffers").
  std::vector<std::vector<TablePtr>> buffers(nodes);
  auto split_one = [&](size_t node) {
    buffers[node] = HashPartition(*input.partition(node), key_cols, nodes);
  };
  if (pool != nullptr) {
    pool->ParallelFor(nodes, split_one);
  } else {
    for (size_t i = 0; i < nodes; ++i) split_one(i);
  }
  // Route buffers to target nodes and concatenate ("receive"). A receive can
  // fail — the faulting node's stream is lost, so the whole exchange aborts
  // before any downstream state is touched.
  std::vector<TablePtr> received(nodes);
  int64_t moved = 0;
  for (size_t target = 0; target < nodes; ++target) {
    DBSP_RETURN_NOT_OK(MaybeInjectFault(faults, "exchange.shuffle"));
    TablePtr merged = Table::Make(input.partition(0)->schema());
    for (size_t source = 0; source < nodes; ++source) {
      const TablePtr& buf = buffers[source][target];
      if (source != target) moved += static_cast<int64_t>(buf->num_rows());
      merged->AppendAll(*buf);
    }
    received[target] = std::move(merged);
  }
  if (rows_shuffled != nullptr) *rows_shuffled += moved;
  return DistributedTable::FromPartitions(std::move(received), key_cols);
}

Result<std::vector<TablePtr>> Exchange::Broadcast(const TablePtr& table,
                                                  size_t num_nodes,
                                                  int64_t* rows_shuffled,
                                                  FaultInjector* faults) {
  // Every node gets a private replica. Handing out the same TablePtr would
  // let an in-place mutation on one node silently corrupt all the others
  // (and the sender's copy).
  std::vector<TablePtr> out;
  out.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    DBSP_RETURN_NOT_OK(MaybeInjectFault(faults, "exchange.broadcast"));
    out.push_back(table->Clone());
  }
  if (rows_shuffled != nullptr && num_nodes > 1) {
    *rows_shuffled +=
        static_cast<int64_t>(table->num_rows() * (num_nodes - 1));
  }
  return out;
}

}  // namespace dbspinner
