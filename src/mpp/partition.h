// Hash partitioning: the data-distribution primitive of the shared-nothing
// simulation. A partitioned table models a relation distributed across the
// nodes of an MPP cluster.

#pragma once

#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dbspinner {

/// Splits `input` into `num_partitions` tables by hashing the given key
/// columns (rows with equal keys land in the same partition). NULL keys hash
/// to partition 0's bucket deterministically.
std::vector<TablePtr> HashPartition(const Table& input,
                                    const std::vector<size_t>& key_cols,
                                    size_t num_partitions);

/// Splits `input` into up to `num_partitions` contiguous row ranges of
/// near-equal size (round-robin by range; models node-local scans).
std::vector<TablePtr> RangePartition(const Table& input,
                                     size_t num_partitions);

/// Concatenates partitions back into one table (the "gather" step).
/// All partitions must share the first partition's schema.
TablePtr Gather(const std::vector<TablePtr>& partitions);

/// Combined row hash over `key_cols` of row `row`.
size_t HashRowKeys(const Table& t, const std::vector<size_t>& key_cols,
                   size_t row);

}  // namespace dbspinner
