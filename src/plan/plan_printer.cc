#include "plan/plan_printer.h"

#include <map>

#include "common/string_util.h"

namespace dbspinner {

std::string ExplainProgramWithProfile(
    const Program& program, const std::map<int, StepProfile>& profile,
    bool verbose) {
  // Render the plain program, then splice per-step annotations onto the
  // "Step N:" lines. Simpler: render line-by-line ourselves.
  std::string base = ExplainProgram(program, verbose);
  std::string out;
  size_t step_index = 0;
  size_t start = 0;
  while (start <= base.size()) {
    size_t end = base.find('\n', start);
    if (end == std::string::npos) end = base.size();
    std::string line = base.substr(start, end - start);
    if (line.rfind("Step ", 0) == 0 && step_index < program.steps.size()) {
      const Step& s = program.steps[step_index++];
      auto it = profile.find(s.id);
      if (it != profile.end()) {
        const StepProfile& p = it->second;
        line += StringPrintf("  (actual: %lldx, %.3f ms total",
                             static_cast<long long>(p.executions),
                             p.total_ms);
        if (p.last_rows >= 0) {
          line += StringPrintf(", %lld rows last",
                               static_cast<long long>(p.last_rows));
        }
        line += ")";
      } else {
        line += "  (never executed)";
      }
    }
    out += line;
    out += "\n";
    if (end == base.size()) break;
    start = end + 1;
  }
  return out;
}

std::string ExplainProgram(const Program& program, bool verbose) {
  // Display step numbers are 1-based positions; jump targets resolve ids.
  std::map<int, size_t> id_to_pos;
  for (size_t i = 0; i < program.steps.size(); ++i) {
    id_to_pos[program.steps[i].id] = i + 1;
  }

  std::string out;
  for (size_t i = 0; i < program.steps.size(); ++i) {
    const Step& s = program.steps[i];
    out += "Step " + std::to_string(i + 1) + ": ";
    switch (s.kind) {
      case Step::Kind::kMaterialize:
        out += "Materialize '" + s.target + "'";
        break;
      case Step::Kind::kRename:
        out += "Rename '" + s.source + "' to '" + s.target + "'";
        break;
      case Step::Kind::kMergeUpdate:
        out += "Merge '" + s.source + "' into '" + s.target + "' by key #" +
               std::to_string(s.key_col);
        break;
      case Step::Kind::kAppendResult:
        out += "Append '" + s.source + "' into '" + s.target + "'";
        break;
      case Step::Kind::kDedupeResult:
        out += "Dedupe '" + s.target + "' against '" + s.source + "'";
        break;
      case Step::Kind::kCopyResult:
        out += "Copy '" + s.source + "' as '" + s.target + "'";
        break;
      case Step::Kind::kRemoveResult:
        out += "Remove '" + s.target + "'";
        break;
      case Step::Kind::kInitLoop:
        out += "Initialize loop " + s.loop.ToString();
        break;
      case Step::Kind::kLoopCheck: {
        size_t target = id_to_pos.count(s.jump_to_id)
                            ? id_to_pos[s.jump_to_id]
                            : 0;
        out += "Update loop; go to step " + std::to_string(target) +
               " if continue";
        break;
      }
      case Step::Kind::kComputeDelta:
        out += "ComputeDelta '" + s.target + "' from '" + s.source +
               "' by key #" + std::to_string(s.key_col);
        break;
      case Step::Kind::kFinal:
        out += "Final query";
        break;
    }
    if (!s.comment.empty()) out += "  -- " + s.comment;
    out += "\n";
    if (verbose && s.plan) out += s.plan->ToString(1);
  }
  return out;
}

}  // namespace dbspinner
