#include "plan/program.h"

#include "common/string_util.h"
#include "exec/physical_plan.h"

namespace dbspinner {

LoopSpec LoopSpec::Clone() const {
  LoopSpec s;
  s.kind = kind;
  s.n = n;
  if (expr) s.expr = expr->Clone();
  s.cte_name = cte_name;
  s.watch_name = watch_name;
  s.key_col = key_col;
  return s;
}

const char* LoopSpec::TypeName() const {
  switch (kind) {
    case Kind::kIterations:
    case Kind::kUpdates:
      return "metadata";
    case Kind::kAny:
    case Kind::kAll:
      return "data";
    case Kind::kDeltaLess:
      return "delta";
    case Kind::kWhileResultNonEmpty:
      return "recursive";
  }
  return "?";
}

std::string LoopSpec::ToString() const {
  std::string out = "<<Type:";
  out += TypeName();
  switch (kind) {
    case Kind::kIterations:
      out += ", N:" + std::to_string(n) + " iterations, Expr:NONE";
      break;
    case Kind::kUpdates:
      out += ", N:" + std::to_string(n) + " updates, Expr:NONE";
      break;
    case Kind::kAny:
      out += ", N:ANY, Expr:" + expr->ToString();
      break;
    case Kind::kAll:
      out += ", N:ALL, Expr:" + expr->ToString();
      break;
    case Kind::kDeltaLess:
      out += ", N:delta < " + std::to_string(n) + ", Expr:NONE";
      break;
    case Kind::kWhileResultNonEmpty:
      out += ", while '" + watch_name + "' non-empty";
      break;
  }
  out += ">>";
  return out;
}

// Out-of-line so PhysicalOpPtr's deleter sees the complete type.
Step::Step() = default;
Step::~Step() = default;
Step::Step(Step&&) noexcept = default;
Step& Step::operator=(Step&&) noexcept = default;

const char* Step::KindName() const {
  switch (kind) {
    case Kind::kMaterialize: return "Materialize";
    case Kind::kRename: return "Rename";
    case Kind::kMergeUpdate: return "MergeUpdate";
    case Kind::kAppendResult: return "AppendResult";
    case Kind::kDedupeResult: return "DedupeResult";
    case Kind::kCopyResult: return "CopyResult";
    case Kind::kRemoveResult: return "RemoveResult";
    case Kind::kInitLoop: return "InitLoop";
    case Kind::kLoopCheck: return "LoopCheck";
    case Kind::kComputeDelta: return "ComputeDelta";
    case Kind::kFinal: return "Final";
  }
  return "?";
}

int Program::FindStep(int id) const {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

void Program::InsertBefore(int before_id, Step step) {
  int idx = FindStep(before_id);
  if (idx < 0) {
    steps.push_back(std::move(step));
    return;
  }
  steps.insert(steps.begin() + idx, std::move(step));
}

}  // namespace dbspinner
