#include "plan/logical_plan.h"

#include "common/string_util.h"

namespace dbspinner {

const char* LogicalOpKindName(LogicalOpKind k) {
  switch (k) {
    case LogicalOpKind::kScan: return "Scan";
    case LogicalOpKind::kValues: return "Values";
    case LogicalOpKind::kFilter: return "Filter";
    case LogicalOpKind::kProject: return "Project";
    case LogicalOpKind::kJoin: return "Join";
    case LogicalOpKind::kAggregate: return "Aggregate";
    case LogicalOpKind::kUnionAll: return "UnionAll";
    case LogicalOpKind::kExcept: return "Except";
    case LogicalOpKind::kIntersect: return "Intersect";
    case LogicalOpKind::kDistinct: return "Distinct";
    case LogicalOpKind::kSort: return "Sort";
    case LogicalOpKind::kLimit: return "Limit";
    case LogicalOpKind::kDeltaRestrict: return "DeltaRestrict";
  }
  return "?";
}

LogicalOpPtr LogicalOp::Clone() const {
  auto op = std::make_unique<LogicalOp>();
  op->kind = kind;
  op->output_schema = output_schema;
  for (const auto& c : children) op->children.push_back(c->Clone());
  op->scan_source = scan_source;
  op->scan_name = scan_name;
  op->rows = rows;
  if (predicate) op->predicate = predicate->Clone();
  for (const auto& p : projections) op->projections.push_back(p->Clone());
  op->join_type = join_type;
  if (join_condition) op->join_condition = join_condition->Clone();
  for (const auto& g : group_exprs) op->group_exprs.push_back(g->Clone());
  for (const auto& a : aggregates) op->aggregates.push_back(a.Clone());
  for (const auto& k : sort_keys) {
    SortKey sk;
    sk.expr = k.expr->Clone();
    sk.descending = k.descending;
    op->sort_keys.push_back(std::move(sk));
  }
  op->limit = limit;
  op->offset = offset;
  op->delta_source = delta_source;
  op->delta_key_col = delta_key_col;
  op->delta_keep_matching = delta_keep_matching;
  return op;
}

bool LogicalOp::ReadsResult(const std::string& name) const {
  if (kind == LogicalOpKind::kScan && scan_source == ScanSource::kResult &&
      EqualsIgnoreCase(scan_name, name)) {
    return true;
  }
  if (kind == LogicalOpKind::kDeltaRestrict &&
      EqualsIgnoreCase(delta_source, name)) {
    return true;
  }
  for (const auto& c : children) {
    if (c->ReadsResult(name)) return true;
  }
  return false;
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + LogicalOpKindName(kind);
  switch (kind) {
    case LogicalOpKind::kScan:
      out += std::string(" ") +
             (scan_source == ScanSource::kCatalog ? "table:" : "result:") +
             scan_name;
      break;
    case LogicalOpKind::kValues:
      out += " rows:" + std::to_string(rows.size());
      break;
    case LogicalOpKind::kFilter:
      out += " [" + predicate->ToString() + "]";
      break;
    case LogicalOpKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += output_schema.column(i).name + "=" + projections[i]->ToString();
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kJoin:
      out += join_type == JoinType::kLeft ? " LEFT" : " INNER";
      if (join_condition) out += " ON " + join_condition->ToString();
      break;
    case LogicalOpKind::kAggregate: {
      out += " groups:[";
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_exprs[i]->ToString();
      }
      out += "] aggs:[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggKindName(aggregates[i].kind)) +
               (aggregates[i].arg ? "(" + aggregates[i].arg->ToString() + ")"
                                  : "");
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kSort: {
      out += " [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].expr->ToString();
        if (sort_keys[i].descending) out += " DESC";
      }
      out += "]";
      break;
    }
    case LogicalOpKind::kLimit:
      out += " " + std::to_string(limit);
      if (offset > 0) out += " OFFSET " + std::to_string(offset);
      break;
    case LogicalOpKind::kDeltaRestrict:
      out += std::string(" key:") + std::to_string(delta_key_col) +
             (delta_keep_matching ? " IN " : " NOT IN ") + "result:" +
             delta_source;
      break;
    default:
      break;
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

LogicalOpPtr MakeScan(ScanSource source, std::string name, Schema schema) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kScan;
  op->scan_source = source;
  op->scan_name = ToLower(name);
  op->output_schema = std::move(schema);
  return op;
}

LogicalOpPtr MakeFilter(BoundExprPtr predicate, LogicalOpPtr child) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kFilter;
  op->output_schema = child->output_schema;
  op->predicate = std::move(predicate);
  op->children.push_back(std::move(child));
  return op;
}

LogicalOpPtr MakeProject(std::vector<BoundExprPtr> projections,
                         std::vector<std::string> names, LogicalOpPtr child) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kProject;
  Schema schema;
  for (size_t i = 0; i < projections.size(); ++i) {
    schema.AddColumn(names[i], projections[i]->type);
  }
  op->output_schema = std::move(schema);
  op->projections = std::move(projections);
  op->children.push_back(std::move(child));
  return op;
}

}  // namespace dbspinner
