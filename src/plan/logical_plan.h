// Logical query plan operators.
//
// Logical plans are produced by the binder, rewritten by the optimizer rules,
// and converted to physical plans by the physical planner. Nodes are a tagged
// struct (like the AST) which keeps rewrites simple.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/aggregate_functions.h"
#include "expr/expr.h"
#include "parser/ast.h"
#include "storage/schema.h"

namespace dbspinner {

enum class LogicalOpKind {
  kScan,      ///< read a catalog table or a named intermediate result
  kValues,    ///< constant rows
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kUnionAll,   ///< bag union of the two children
  kExcept,     ///< set difference (distinct), left minus right
  kIntersect,  ///< set intersection (distinct)
  kDistinct,       ///< dedupe all columns
  kSort,
  kLimit,
  kDeltaRestrict,  ///< semi-join filter of the child against the key set in
                   ///< result `delta_source` (semi-naive iteration)
};

const char* LogicalOpKindName(LogicalOpKind k);

/// Where a kScan reads from.
enum class ScanSource {
  kCatalog,  ///< base table
  kResult,   ///< named intermediate result (CTE / working / common table)
};

struct SortKey {
  BoundExprPtr expr;  ///< bound over the child's output
  bool descending = false;
};

struct LogicalOp;
using LogicalOpPtr = std::unique_ptr<LogicalOp>;

/// One logical operator. Only the fields of the given `kind` are meaningful.
struct LogicalOp {
  LogicalOpKind kind;
  Schema output_schema;
  std::vector<LogicalOpPtr> children;

  // kScan
  ScanSource scan_source = ScanSource::kCatalog;
  std::string scan_name;

  // kValues
  std::vector<std::vector<Value>> rows;

  // kFilter
  BoundExprPtr predicate;

  // kProject: one expression per output column (names in output_schema)
  std::vector<BoundExprPtr> projections;

  // kJoin: condition bound over [left columns ++ right columns]
  JoinType join_type = JoinType::kInner;
  BoundExprPtr join_condition;  ///< null => cross join

  // kAggregate: output = [group columns ++ aggregate results]
  std::vector<BoundExprPtr> group_exprs;
  std::vector<AggregateSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit: -1 = no limit (offset only)
  int64_t limit = -1;
  int64_t offset = 0;

  // kDeltaRestrict: keep child rows whose `delta_key_col` value appears
  // (keep_matching) / does not appear (!keep_matching) in column 0 of the
  // named intermediate result.
  std::string delta_source;
  size_t delta_key_col = 0;
  bool delta_keep_matching = true;

  LogicalOpPtr Clone() const;

  /// True if any kScan in the subtree reads result `name` (case-insensitive
  /// exact match on scan_name with kResult source).
  bool ReadsResult(const std::string& name) const;

  /// Indented multi-line rendering.
  std::string ToString(int indent = 0) const;
};

LogicalOpPtr MakeScan(ScanSource source, std::string name, Schema schema);
LogicalOpPtr MakeFilter(BoundExprPtr predicate, LogicalOpPtr child);
LogicalOpPtr MakeProject(std::vector<BoundExprPtr> projections,
                         std::vector<std::string> names, LogicalOpPtr child);

}  // namespace dbspinner
