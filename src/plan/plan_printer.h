// EXPLAIN rendering of Programs and plans (the Table I view).

#pragma once

#include <map>
#include <string>

#include "exec/physical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Renders a program as a numbered step list in the style of the paper's
/// Table I, e.g.:
///
///   Step 1: Materialize 'pagerank' <- non-iterative part R0
///           Project [...]
///             ...
///   Step 2: Initialize loop <<Type:metadata, N:10 iterations, Expr:NONE>>
///   Step 3: Materialize 'pagerank__working' <- iterative part Ri
///   Step 4: Rename 'pagerank__working' to 'pagerank'
///   Step 5: Increment counter; go to step 3 if continue
///
/// `verbose` includes the nested logical plan of each Materialize/Final step.
std::string ExplainProgram(const Program& program, bool verbose = true);

/// EXPLAIN ANALYZE rendering: like ExplainProgram but annotates each step
/// with its measured executions, accumulated time, and last row count from
/// `profile` (keyed by step id).
std::string ExplainProgramWithProfile(
    const Program& program, const std::map<int, StepProfile>& profile,
    bool verbose = false);

}  // namespace dbspinner
