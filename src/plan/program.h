// Program: the linear step list produced by the functional rewrite.
//
// A Program is the direct analogue of the paper's Table I: a sequence of
// materializations, renames, merges and loop-control steps, ending in a final
// query. The executor interprets it; the `loop` step implements conditional
// jumps to a previous step.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "plan/logical_plan.h"

namespace dbspinner {

class PhysicalOp;
using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Termination / continuation specification of one loop operator
/// (paper §IV, §VI-B). Carries <<Type, N, Expr>> exactly as in Fig 4.
struct LoopSpec {
  enum class Kind {
    kIterations,           ///< Metadata: stop after n iterations
    kUpdates,              ///< Metadata: stop once cumulative updated rows >= n
    kAny,                  ///< Data: stop once >= 1 row of the CTE satisfies expr
    kAll,                  ///< Data: stop once every row satisfies expr
    kDeltaLess,            ///< Delta: stop once < n rows changed vs previous iteration
    kWhileResultNonEmpty,  ///< recursive CTEs: continue while `watch_name` has rows
  };
  Kind kind = Kind::kIterations;
  int64_t n = 0;
  BoundExprPtr expr;        ///< kAny/kAll predicate, bound over the CTE schema
  std::string cte_name;     ///< result the condition inspects
  std::string watch_name;   ///< kWhileResultNonEmpty: delta result to watch
  size_t key_col = 0;       ///< kDeltaLess: key column for the diff

  LoopSpec Clone() const;
  /// "Metadata" / "Data" / "Delta" (Fig 3/4 Type field).
  const char* TypeName() const;
  /// "<<Type:metadata, N:10, Expr:NONE>>".
  std::string ToString() const;
};

/// One step of a Program.
struct Step {
  enum class Kind {
    kMaterialize,   ///< run `plan`, bind output as result `target`
    kRename,        ///< rename result `source` to `target` (O(1), §VI-A)
    kMergeUpdate,   ///< merge working `source` into CTE `target` by `key_col`
                    ///< (Algorithm 1 lines 8-10); counts updated rows; also
                    ///< the copy-back baseline when rename is disabled
    kAppendResult,  ///< append rows of `source` into `target` (recursive CTEs)
    kDedupeResult,  ///< remove from `target` rows present in result `source`
                    ///< and internal duplicates (recursive UNION DISTINCT)
    kCopyResult,    ///< deep-copy result `source` as `target`
    kRemoveResult,  ///< unbind result `target`
    kInitLoop,      ///< reset loop `loop_id` state; when `jump_to_id` is set
                    ///< and the termination condition already holds before
                    ///< the first body execution (a 0-iteration loop), jump
                    ///< past the step with id `jump_to_id`
    kLoopCheck,     ///< update loop state; jump to step id `jump_to_id` if
                    ///< the loop should continue
    kComputeDelta,  ///< diff result `source` against loop `loop_id`'s
                    ///< previous-version snapshot by `key_col`; bind the
                    ///< changed rows (old and new versions) as `target`
                    ///< and advance the snapshot (semi-naive iteration)
    kFinal,         ///< run `plan`; its output is the program result
  };

  Step();
  ~Step();
  Step(Step&&) noexcept;
  Step& operator=(Step&&) noexcept;

  Kind kind = Kind::kMaterialize;
  int id = 0;  ///< stable label; jump targets reference ids, not indices

  LogicalOpPtr plan;        ///< kMaterialize / kFinal
  PhysicalOpPtr physical;   ///< filled by the physical planner

  std::string target;
  std::string source;
  size_t key_col = 0;       ///< kMergeUpdate / kDedupeResult key ordinal

  int loop_id = 0;          ///< kInitLoop / kLoopCheck
  LoopSpec loop;            ///< kInitLoop (and echoed on kLoopCheck)
  int jump_to_id = 0;       ///< kLoopCheck: body start step id;
                            ///< kInitLoop: loop-check id to skip past when
                            ///< the loop runs zero iterations

  std::string comment;      ///< EXPLAIN annotation

  const char* KindName() const;
};

/// Metadata about one iterative CTE inside a Program, used by the
/// cross-block optimizer rules (predicate pushdown into R0, common-result
/// hoisting out of Ri).
struct IterativeCteInfo {
  std::string cte_name;
  std::string working_name;
  Schema cte_schema;
  size_t key_col = 0;

  int r0_step_id = 0;    ///< kMaterialize of R0
  int ri_step_id = 0;    ///< kMaterialize of Ri (loop body start)
  int init_step_id = 0;  ///< kInitLoop
  int check_step_id = 0;

  // Legality facts computed from the AST by the functional rewrite:
  bool ri_has_where = false;      ///< drives rename vs merge (Algorithm 1)
  bool pushdown_legal = false;    ///< Ri = single self-scan, no join/agg
  /// pass_through[i]: Ri's i-th select item is a bare reference to CTE
  /// column i (so a predicate on column i stays true across iterations).
  std::vector<bool> pass_through;
};

/// A complete executable statement: steps plus iterative-CTE metadata.
struct Program {
  std::vector<Step> steps;
  std::vector<IterativeCteInfo> iterative_ctes;
  int next_id = 1;

  /// Result names (and their schemas) the caller binds into the registry
  /// before RunProgram — materialized-view contents overlaid as CTEs, whose
  /// scans have no producing step. The dataflow verifier treats them as
  /// bound at entry instead of diagnosing V101.
  std::vector<std::pair<std::string, Schema>> seeded_results;

  int NewId() { return next_id++; }

  /// Index of the step with `id`; -1 if absent.
  int FindStep(int id) const;

  /// Inserts `step` immediately before the step with id `before_id`.
  void InsertBefore(int before_id, Step step);
};

}  // namespace dbspinner
