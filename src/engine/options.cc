#include "engine/options.h"

#include "common/string_util.h"

namespace dbspinner {

std::string EngineOptions::ToString() const {
  return StringPrintf(
      "EngineOptions{workers=%d, fold=%d, join_simplify=%d, pushdown=%d, "
      "cte_pushdown=%d, common_result=%d, rename=%d}",
      num_workers, optimizer.enable_constant_folding ? 1 : 0,
      optimizer.enable_join_simplification ? 1 : 0,
      optimizer.enable_predicate_pushdown ? 1 : 0,
      optimizer.enable_cte_predicate_pushdown ? 1 : 0,
      optimizer.enable_common_result ? 1 : 0,
      optimizer.enable_rename_optimization ? 1 : 0);
}

}  // namespace dbspinner
