#include "engine/options.h"

#include "common/string_util.h"
#include "exec/physical_planner.h"

namespace dbspinner {

const std::vector<OptimizerToggles::Toggle>& OptimizerToggles::All() {
  static const std::vector<Toggle> kToggles = {
      {"constant_folding", &OptimizerOptions::enable_constant_folding},
      {"join_simplification", &OptimizerOptions::enable_join_simplification},
      {"predicate_pushdown", &OptimizerOptions::enable_predicate_pushdown},
      {"cte_predicate_pushdown",
       &OptimizerOptions::enable_cte_predicate_pushdown},
      {"common_result", &OptimizerOptions::enable_common_result},
      {"rename", &OptimizerOptions::enable_rename_optimization},
      {"delta_iteration", &OptimizerOptions::enable_delta_iteration},
      {"join_build_cache", &OptimizerOptions::enable_join_build_cache},
      {"vectorized_exec", &OptimizerOptions::vectorized_exec},
  };
  return kToggles;
}

bool OptimizerToggles::Set(OptimizerOptions* options, const std::string& name,
                           bool value) {
  for (const Toggle& t : All()) {
    if (name == t.name) {
      options->*(t.member) = value;
      return true;
    }
  }
  return false;
}

OptimizerOptions OptimizerToggles::AllSetTo(bool value) {
  OptimizerOptions options;
  for (const Toggle& t : All()) {
    options.*(t.member) = value;
  }
  return options;
}

Status EngineOptions::Validate() const {
  if (morsel_size < 1) {
    return Status::InvalidArgument("morsel_size must be >= 1");
  }
  if (mpp_min_rows_per_task < 1) {
    return Status::InvalidArgument("mpp_min_rows_per_task must be >= 1");
  }
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (max_iterations_guard < 1) {
    return Status::InvalidArgument("max_iterations_guard must be >= 1");
  }
  if (ivm_max_delta_rows < 1) {
    return Status::InvalidArgument("ivm_max_delta_rows must be >= 1");
  }
  // The broadcast-fusion predicate (BroadcastFusionLegal, shared by the
  // pipeline executor and the V205 verifier check) compares the planner's
  // double build estimate against this budget; past 2^53 the size_t→double
  // conversion stops being exact and the boundary decision would depend on
  // rounding. Reject budgets the predicate cannot decide exactly.
  if (broadcast_build_rows > (size_t{1} << 53) ||
      (broadcast_build_rows > 0 &&
       !BroadcastFusionLegal(static_cast<double>(broadcast_build_rows),
                             broadcast_build_rows))) {
    return Status::InvalidArgument(
        "broadcast_build_rows must be exactly representable as a double "
        "(<= 2^53)");
  }
  if (persistence.enabled) {
    if (persistence.path.empty()) {
      return Status::InvalidArgument(
          "persistence.enabled requires a non-empty persistence.path");
    }
    if (persistence.block_rows < 1) {
      return Status::InvalidArgument("persistence.block_rows must be >= 1");
    }
    if (persistence.buffer_pool_blocks < 1) {
      return Status::InvalidArgument(
          "persistence.buffer_pool_blocks must be >= 1");
    }
    if (persistence.manifest_every < 1) {
      return Status::InvalidArgument("persistence.manifest_every must be >= 1");
    }
  }
  return Status::OK();
}

std::string EngineOptions::ToString() const {
  return StringPrintf(
      "EngineOptions{workers=%d, fold=%d, join_simplify=%d, pushdown=%d, "
      "cte_pushdown=%d, common_result=%d, rename=%d, delta=%d, "
      "build_cache=%d, vectorized=%d(morsel=%zu, broadcast=%zu), "
      "faults=%d(seed=%llu, "
      "rate=%.3f), recovery=%d(k=%lld, "
      "retries=%d), verify=%d(enforce=%d), persist=%d, "
      "ivm=%d(max_delta=%lld)}",
      num_workers, optimizer.enable_constant_folding ? 1 : 0,
      optimizer.enable_join_simplification ? 1 : 0,
      optimizer.enable_predicate_pushdown ? 1 : 0,
      optimizer.enable_cte_predicate_pushdown ? 1 : 0,
      optimizer.enable_common_result ? 1 : 0,
      optimizer.enable_rename_optimization ? 1 : 0,
      optimizer.enable_delta_iteration ? 1 : 0,
      optimizer.enable_join_build_cache ? 1 : 0,
      optimizer.vectorized_exec ? 1 : 0, morsel_size, broadcast_build_rows,
      fault_injection.enabled ? 1 : 0,
      static_cast<unsigned long long>(fault_injection.seed),
      fault_injection.rate, fault_tolerance.enable_recovery ? 1 : 0,
      static_cast<long long>(fault_tolerance.checkpoint_interval),
      fault_tolerance.max_step_retries, verify.verify_plans ? 1 : 0,
      verify.enforce ? 1 : 0, persistence.enabled ? 1 : 0,
      ivm_enabled ? 1 : 0, static_cast<long long>(ivm_max_delta_rows));
}

}  // namespace dbspinner
