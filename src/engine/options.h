// Engine and optimizer configuration.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "storage/storage_options.h"

namespace dbspinner {

/// Toggles for the rule-based rewrites. Each corresponds to a paper
/// optimization (§V, §VII) and can be disabled to reproduce the baselines.
struct OptimizerOptions {
  /// Fold constant subexpressions.
  bool enable_constant_folding = true;

  /// Convert LEFT joins to INNER when a null-rejecting predicate above
  /// filters the right side (enables common-result extraction on the -VS
  /// queries).
  bool enable_join_simplification = true;

  /// Classic within-block predicate pushdown (below projects, into join
  /// sides, through unions).
  bool enable_predicate_pushdown = true;

  /// Cross-block pushdown from Qf into the non-iterative part R0 of an
  /// iterative CTE, when legal (§V-B, Fig 10).
  bool enable_cte_predicate_pushdown = true;

  /// Hoist loop-invariant join subtrees out of Ri and materialize them once
  /// before the loop (§V-A, Fig 9).
  bool enable_common_result = true;

  /// Use the O(1) `rename` step when Ri replaces the whole dataset; when
  /// disabled, fall back to the copy-back-with-update-identification
  /// baseline (§VII-B, Fig 8).
  bool enable_rename_optimization = true;

  /// Delta-driven (semi-naive) iteration: when the loop body has a
  /// merge-update shape (a key-preserving self-reference joined against
  /// loop-invariant inputs), recompute only the keys affected by the rows
  /// that changed in the previous iteration instead of the whole CTE.
  bool enable_delta_iteration = true;

  /// Reuse a hash join's build side across loop iterations while the build
  /// input is the identical table version (pointer identity, sound under
  /// the engine's copy-on-write result discipline).
  bool enable_join_build_cache = true;

  /// Morsel-driven vectorized execution (DESIGN.md §11): fuse
  /// scan→filter→project→probe chains into chunk-at-a-time pipelines that
  /// materialize only at pipeline breakers. Off = the original
  /// operator-at-a-time executor, kept as the differential baseline.
  bool vectorized_exec = true;
};

/// Programmatic access to every per-rule optimizer toggle. The differential
/// fuzzer, benchmarks and tests iterate this list instead of hard-coding the
/// field names, so a new rewrite only has to register itself here to be
/// swept by the whole correctness tooling.
struct OptimizerToggles {
  struct Toggle {
    const char* name;                    ///< stable identifier ("rename", ...)
    bool OptimizerOptions::*member;      ///< the flag it controls
  };

  /// All rule toggles, in a stable order.
  static const std::vector<Toggle>& All();

  /// Sets the toggle called `name`; returns false if no such toggle.
  static bool Set(OptimizerOptions* options, const std::string& name,
                  bool value);

  /// Options with every rule toggle forced to `value`.
  static OptimizerOptions AllSetTo(bool value);
};

/// Recovery policy for the fault-tolerant executor (see
/// exec/program_executor.cc and DESIGN.md §8). Recovery is opt-in: with
/// `enable_recovery` off, any injected fault surfaces to the caller
/// unchanged, which is what the framework tests assert against.
struct FaultToleranceOptions {
  /// Master switch for retry + checkpoint/restore in RunProgram.
  bool enable_recovery = false;

  /// In-place re-executions of an idempotent step after a retryable
  /// (kUnavailable) failure, before falling back to checkpoint restore.
  int max_step_retries = 3;

  /// Base backoff between retries; attempt i sleeps backoff << i. Zero (the
  /// default) keeps tests fast; real deployments would set this.
  int64_t retry_backoff_us = 0;

  /// Checkpoint cadence K: snapshot loop state + registry every K loop
  /// iterations (plus one checkpoint at every loop entry). <= 0 disables
  /// periodic checkpoints, leaving only loop-entry and program-start ones.
  int64_t checkpoint_interval = 4;

  /// Livelock guard: after this many checkpoint restores the executor gives
  /// up and surfaces the original typed failure status.
  int64_t max_restores = 64;
};

/// Static plan & program verification (src/verify/, DESIGN.md §9).
struct VerifyOptions {
  /// Run the verifier after binding, after each optimizer rule, and after
  /// program compilation. Cheap (linear in plan size), so on by default.
  bool verify_plans = true;

  /// Escalate any verifier diagnostic to a kInternal error. Off by default:
  /// release builds log the report to stderr, count it in
  /// ExecStats::verify_violations, and keep executing (a verifier bug must
  /// never take down a working query). Tests and the fuzzer turn this on so
  /// an illegal rewrite is a crash-class finding.
  bool enforce = false;
};

/// Top-level engine options.
struct EngineOptions {
  OptimizerOptions optimizer;

  /// Static verification of plans and compiled programs.
  VerifyOptions verify;

  /// Deterministic fault injection (off by default; see
  /// common/fault_injection.h). The Database materializes a FaultInjector
  /// from this config whenever `fault_injection.enabled` is set.
  FaultInjectionConfig fault_injection;

  /// Recovery policy applied by RunProgram when steps fail with a
  /// retryable/recoverable status.
  FaultToleranceOptions fault_tolerance;

  /// Durable storage: WAL + compressed columnar extents + buffer-managed
  /// scans. Off by default (pure in-memory engine).
  PersistenceOptions persistence;

  /// Simulated shared-nothing width: number of worker "nodes" used by
  /// partitioned joins/aggregations/filters. 1 = serial.
  int num_workers = 1;

  /// Safety guard: a loop exceeding this many iterations fails the query.
  int64_t max_iterations_guard = 1000000;

  /// Inputs smaller than this bypass parallel execution.
  size_t mpp_min_rows_per_task = 8192;

  /// Rows per morsel for the vectorized pipeline executor. Small enough to
  /// keep a chunk's working set cache-resident, large enough to amortize
  /// per-chunk dispatch. Tests sweep 1/7/16/1024 to shake out boundary bugs.
  size_t morsel_size = 1024;

  /// Build sides at or below this many rows are broadcast to every pipeline
  /// worker, which makes the hash-probe stage fusible under MPP (every
  /// worker probes the same shared hash, no shuffle). Larger build sides
  /// keep the partitioned-shuffle breaker join and its rows_shuffled
  /// accounting. 0 forces the breaker path for every parallel join (the
  /// benches use this to measure fused vs. breaker probes).
  size_t broadcast_build_rows = 1u << 20;

  /// Incremental view maintenance: when off, registered materialized views
  /// stay correct but every captured delta downgrades to a full-refresh
  /// marker (the knobs never affect answers, only how they are produced).
  bool ivm_enabled = true;

  /// A single statement's captured delta larger than this many rows (the
  /// insert and delete sets combined) triggers a full refresh instead of
  /// incremental folding — past that point re-running the view body is
  /// cheaper than per-row maintenance.
  int64_t ivm_max_delta_rows = 1 << 20;

  /// Fault injection for the fuzzing harness only: makes the rename step
  /// silently drop the last row of the renamed result, so a differential
  /// run must flag the rename-enabled plan against the merge baseline.
  /// Never enable outside tests.
  bool dev_break_rename_for_testing = false;

  /// Rejects configurations the executor cannot run (zero-sized morsels,
  /// non-positive worker counts or task thresholds) with kInvalidArgument.
  /// Called at statement entry so a bad session override fails the
  /// statement instead of reaching the morsel split loop.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace dbspinner
