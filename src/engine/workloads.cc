#include "engine/workloads.h"

#include "common/string_util.h"

namespace dbspinner {
namespace workloads {

namespace {

// Shared fragments keep the -VS variants literally "the same query plus the
// vertexstatus join", as the paper describes.

const char kPRNonIterative[] =
    "  SELECT src, 0, 0.15\n"
    "  FROM (SELECT src FROM edges\n"
    "        UNION SELECT dst FROM edges)\n";

std::string PRIterative(bool with_vs) {
  std::string sql =
      "  SELECT pagerank.node,\n"
      "         pagerank.rank + pagerank.delta,\n"
      "         0.85 * SUM(incomingrank.delta * incomingedges.weight)\n"
      "  FROM pagerank\n"
      "    LEFT JOIN edges AS incomingedges\n"
      "      ON pagerank.node = incomingedges.dst\n";
  if (with_vs) {
    // Placed before the self join so the loop-invariant edges-vertexstatus
    // pair is adjacent, mirroring the paper's Fig 5 plan shape.
    sql +=
        "    JOIN vertexstatus AS avail_pr\n"
        "      ON avail_pr.node = incomingedges.dst\n";
  }
  sql +=
      "    LEFT JOIN pagerank AS incomingrank\n"
      "      ON incomingrank.node = incomingedges.src\n";
  if (with_vs) {
    sql += "  WHERE avail_pr.status != 0\n";
  }
  sql +=
      "  GROUP BY pagerank.node,\n"
      "           pagerank.rank + pagerank.delta\n";
  return sql;
}

std::string SSSPNonIterative(int64_t source) {
  return StringPrintf(
      "  SELECT src, 9999999, CASE WHEN src = %lld\n"
      "         THEN 0 ELSE 9999999 END\n"
      "  FROM (SELECT src FROM edges\n"
      "        UNION SELECT dst FROM edges)\n",
      static_cast<long long>(source));
}

std::string SSSPIterative(bool with_vs) {
  std::string sql =
      "  SELECT sssp.node,\n"
      "         LEAST(sssp.distance, sssp.delta),\n"
      "         COALESCE(MIN(incomingdistance.delta\n"
      "                      + incomingedges.weight), 9999999)\n"
      "  FROM sssp\n"
      "    LEFT JOIN edges AS incomingedges\n"
      "      ON sssp.node = incomingedges.dst\n";
  if (with_vs) {
    sql +=
        "    JOIN vertexstatus AS avail\n"
        "      ON avail.node = incomingedges.dst\n";
  }
  sql +=
      "    LEFT JOIN sssp AS incomingdistance\n"
      "      ON incomingdistance.node = incomingedges.src\n"
      "  WHERE incomingdistance.delta != 9999999\n";
  if (with_vs) {
    sql += "    AND avail.status != 0\n";
  }
  sql +=
      "  GROUP BY sssp.node,\n"
      "           LEAST(sssp.distance, sssp.delta)\n";
  return sql;
}

std::string PRQueryImpl(int iterations, bool with_vs) {
  return StringPrintf(
      "WITH ITERATIVE pagerank (node, rank, delta)\n"
      "AS (\n%s"
      "ITERATE\n%s"
      "UNTIL %d ITERATIONS )\n"
      "SELECT node, rank FROM pagerank",
      kPRNonIterative, PRIterative(with_vs).c_str(), iterations);
}

std::string SSSPQueryImpl(int iterations, int64_t source, int64_t target,
                          bool with_vs) {
  return StringPrintf(
      "WITH ITERATIVE sssp (node, distance, delta)\n"
      "AS (\n%s"
      "ITERATE\n%s"
      "UNTIL %d ITERATIONS )\n"
      "SELECT distance FROM sssp WHERE node = %lld",
      SSSPNonIterative(source).c_str(), SSSPIterative(with_vs).c_str(),
      iterations, static_cast<long long>(target));
}

const char kFFNonIterative[] =
    "  SELECT src AS node, COUNT(dst) AS friends,\n"
    "         CEILING(COUNT(dst)\n"
    "                 * (1.0 - (src % 10) / 100.0)) AS friendsprev\n"
    "  FROM edges GROUP BY src\n";

const char kFFIterative[] =
    "  SELECT node AS node,\n"
    "         ROUND(CAST((friends / friendsprev)\n"
    "                    * friends AS NUMERIC), 5) AS friends,\n"
    "         friends AS friendsprev\n"
    "  FROM forecast\n";

}  // namespace

std::string PRQuery(int iterations) {
  return PRQueryImpl(iterations, /*with_vs=*/false);
}

std::string PRVSQuery(int iterations) {
  return PRQueryImpl(iterations, /*with_vs=*/true);
}

std::string SSSPQuery(int iterations, int64_t source_node,
                      int64_t target_node) {
  return SSSPQueryImpl(iterations, source_node, target_node,
                       /*with_vs=*/false);
}

std::string SSSPVSQuery(int iterations, int64_t source_node,
                        int64_t target_node) {
  return SSSPQueryImpl(iterations, source_node, target_node, /*with_vs=*/true);
}

std::string FFQuery(int iterations, int64_t mod_x, int limit) {
  return StringPrintf(
      "WITH ITERATIVE forecast (node, friends, friendsprev)\n"
      "AS (\n%s"
      "ITERATE\n%s"
      "UNTIL %d ITERATIONS )\n"
      "SELECT node, friends\n"
      "FROM forecast WHERE MOD(node, %lld) = 0\n"
      "ORDER BY friends DESC LIMIT %d",
      kFFNonIterative, kFFIterative, iterations,
      static_cast<long long>(mod_x), limit);
}

std::string FFDeltaQuery(int64_t delta_bound, int64_t mod_x) {
  return StringPrintf(
      "WITH ITERATIVE forecast (node, friends, friendsprev)\n"
      "AS (\n%s"
      "ITERATE\n%s"
      "UNTIL DELTA < %lld )\n"
      "SELECT node, friends\n"
      "FROM forecast WHERE MOD(node, %lld) = 0\n"
      "ORDER BY friends DESC LIMIT 10",
      kFFNonIterative, kFFIterative, static_cast<long long>(delta_bound),
      static_cast<long long>(mod_x));
}

std::string SSSPDataConditionQuery(int64_t source_node, int64_t target_node) {
  // Data condition: stop as soon as the target's distance becomes finite
  // (the target must be reachable from the source, else the loop would spin
  // until the engine's iteration guard trips).
  return StringPrintf(
      "WITH ITERATIVE sssp (node, distance, delta)\n"
      "AS (\n%s"
      "ITERATE\n%s"
      "UNTIL ANY(node = %lld AND distance < 9999999) )\n"
      "SELECT distance FROM sssp WHERE node = %lld",
      SSSPNonIterative(source_node).c_str(),
      SSSPIterative(/*with_vs=*/false).c_str(),
      static_cast<long long>(target_node),
      static_cast<long long>(target_node));
}

// ---------------------------------------------------------------------------
// Stored-procedure baselines. Each iteration runs DELETE + INSERT + UPDATE
// statements against real temp tables, planned in isolation (Fig 1 style).
// ---------------------------------------------------------------------------

Procedure PRVSProcedure(int iterations) {
  Procedure p;
  p.Add("DROP TABLE IF EXISTS pr_main")
      .Add("DROP TABLE IF EXISTS pr_work")
      .Add("CREATE TABLE pr_main (node BIGINT, rank DOUBLE, delta DOUBLE)")
      .Add("CREATE TABLE pr_work (node BIGINT, rank DOUBLE, delta DOUBLE)")
      .Add(
          "INSERT INTO pr_main\n"
          "  SELECT src, 0, 0.15\n"
          "  FROM (SELECT src FROM edges UNION SELECT dst FROM edges)")
      .BeginLoop(iterations)
      .Add("DELETE FROM pr_work")
      .Add(
          "INSERT INTO pr_work\n"
          "  SELECT pr_main.node,\n"
          "         pr_main.rank + pr_main.delta,\n"
          "         0.85 * SUM(incomingrank.delta * incomingedges.weight)\n"
          "  FROM pr_main\n"
          "    LEFT JOIN edges AS incomingedges\n"
          "      ON pr_main.node = incomingedges.dst\n"
          "    JOIN vertexstatus AS avail_pr\n"
          "      ON avail_pr.node = incomingedges.dst\n"
          "    LEFT JOIN pr_main AS incomingrank\n"
          "      ON incomingrank.node = incomingedges.src\n"
          "  WHERE avail_pr.status != 0\n"
          "  GROUP BY pr_main.node, pr_main.rank + pr_main.delta")
      .Add(
          "UPDATE pr_main\n"
          "  SET rank = pr_work.rank, delta = pr_work.delta\n"
          "  FROM pr_work\n"
          "  WHERE pr_main.node = pr_work.node")
      .EndLoop()
      .Add("SELECT node, rank FROM pr_main")
      .Add("DROP TABLE pr_work")
      .Add("DROP TABLE pr_main");
  return p;
}

Procedure SSSPVSProcedure(int iterations, int64_t source_node,
                          int64_t target_node) {
  Procedure p;
  p.Add("DROP TABLE IF EXISTS sssp_main")
      .Add("DROP TABLE IF EXISTS sssp_work")
      .Add(
          "CREATE TABLE sssp_main (node BIGINT, distance DOUBLE, "
          "delta DOUBLE)")
      .Add(
          "CREATE TABLE sssp_work (node BIGINT, distance DOUBLE, "
          "delta DOUBLE)")
      .Add(StringPrintf(
          "INSERT INTO sssp_main\n"
          "  SELECT src, 9999999, CASE WHEN src = %lld THEN 0\n"
          "         ELSE 9999999 END\n"
          "  FROM (SELECT src FROM edges UNION SELECT dst FROM edges)",
          static_cast<long long>(source_node)))
      .BeginLoop(iterations)
      .Add("DELETE FROM sssp_work")
      .Add(
          "INSERT INTO sssp_work\n"
          "  SELECT sssp_main.node,\n"
          "         LEAST(sssp_main.distance, sssp_main.delta),\n"
          "         COALESCE(MIN(incomingdistance.delta\n"
          "                      + incomingedges.weight), 9999999)\n"
          "  FROM sssp_main\n"
          "    LEFT JOIN edges AS incomingedges\n"
          "      ON sssp_main.node = incomingedges.dst\n"
          "    JOIN vertexstatus AS avail\n"
          "      ON avail.node = incomingedges.dst\n"
          "    LEFT JOIN sssp_main AS incomingdistance\n"
          "      ON incomingdistance.node = incomingedges.src\n"
          "  WHERE incomingdistance.delta != 9999999\n"
          "    AND avail.status != 0\n"
          "  GROUP BY sssp_main.node,\n"
          "           LEAST(sssp_main.distance, sssp_main.delta)")
      .Add(
          "UPDATE sssp_main\n"
          "  SET distance = sssp_work.distance, delta = sssp_work.delta\n"
          "  FROM sssp_work\n"
          "  WHERE sssp_main.node = sssp_work.node")
      .EndLoop()
      .Add(StringPrintf("SELECT distance FROM sssp_main WHERE node = %lld",
                        static_cast<long long>(target_node)))
      .Add("DROP TABLE sssp_work")
      .Add("DROP TABLE sssp_main");
  return p;
}

Procedure FFProcedure(int iterations, int64_t mod_x) {
  Procedure p;
  p.Add("DROP TABLE IF EXISTS ff_main")
      .Add("DROP TABLE IF EXISTS ff_work")
      .Add(
          "CREATE TABLE ff_main (node BIGINT, friends DOUBLE, "
          "friendsprev DOUBLE)")
      .Add(
          "CREATE TABLE ff_work (node BIGINT, friends DOUBLE, "
          "friendsprev DOUBLE)")
      .Add(
          "INSERT INTO ff_main\n"
          "  SELECT src AS node, COUNT(dst) AS friends,\n"
          "         CEILING(COUNT(dst) * (1.0 - (src % 10) / 100.0))\n"
          "  FROM edges GROUP BY src")
      .BeginLoop(iterations)
      .Add("DELETE FROM ff_work")
      .Add(
          "INSERT INTO ff_work\n"
          "  SELECT node,\n"
          "         ROUND(CAST((friends / friendsprev) * friends\n"
          "                    AS NUMERIC), 5),\n"
          "         friends\n"
          "  FROM ff_main")
      .Add("DELETE FROM ff_main")
      .Add("INSERT INTO ff_main SELECT node, friends, friendsprev "
           "FROM ff_work")
      .EndLoop()
      .Add(StringPrintf(
          "SELECT node, friends FROM ff_main WHERE MOD(node, %lld) = 0\n"
          "ORDER BY friends DESC LIMIT 10",
          static_cast<long long>(mod_x)))
      .Add("DROP TABLE ff_work")
      .Add("DROP TABLE ff_main");
  return p;
}

}  // namespace workloads
}  // namespace dbspinner
