#include "engine/procedure.h"

namespace dbspinner {

Procedure& Procedure::Add(std::string sql) {
  Op op;
  op.kind = Op::Kind::kSql;
  op.sql = std::move(sql);
  Current()->push_back(std::move(op));
  return *this;
}

Procedure& Procedure::BeginLoop(int64_t times) {
  Op op;
  op.kind = Op::Kind::kLoop;
  op.times = times;
  Current()->push_back(std::move(op));
  stack_.push_back(&Current()->back().body);
  return *this;
}

Procedure& Procedure::EndLoop() {
  if (stack_.empty()) {
    invalid_ = true;
    return *this;
  }
  stack_.pop_back();
  return *this;
}

Result<QueryResult> Procedure::RunOps(Database* db,
                                      const std::vector<Op>& ops,
                                      QueryResult last) {
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kSql) {
      DBSP_ASSIGN_OR_RETURN(last, db->Execute(op.sql));
    } else {
      for (int64_t i = 0; i < op.times; ++i) {
        DBSP_ASSIGN_OR_RETURN(last, RunOps(db, op.body, std::move(last)));
      }
    }
  }
  return last;
}

Result<QueryResult> Procedure::Run(Database* db) const {
  if (invalid_ || !stack_.empty()) {
    return Status::InvalidArgument("unbalanced BeginLoop/EndLoop");
  }
  return RunOps(db, ops_, QueryResult{});
}

int64_t Procedure::CountOps(const std::vector<Op>& ops) {
  int64_t total = 0;
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kSql) {
      ++total;
    } else {
      total += op.times * CountOps(op.body);
    }
  }
  return total;
}

int64_t Procedure::TotalStatements() const { return CountOps(ops_); }

}  // namespace dbspinner
