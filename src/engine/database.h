// Database: the public facade of dbspinner.
//
//   Database db;
//   db.Execute("CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
//   db.Execute("INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 1.0)");
//   auto result = db.Execute(
//       "WITH ITERATIVE pr (node, rank, delta) AS (... ITERATE ... UNTIL 10 "
//       "ITERATIONS) SELECT * FROM pr");
//   std::cout << result->table->ToString();

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "engine/options.h"
#include "exec/physical_plan.h"
#include "mpp/thread_pool.h"
#include "parser/ast.h"
#include "plan/program.h"
#include "storage/catalog.h"

namespace dbspinner {

/// Outcome of one statement.
struct QueryResult {
  TablePtr table;             ///< SELECT output; empty 0-col table otherwise
  int64_t rows_affected = 0;  ///< DML row count
  ExecStats stats;            ///< execution counters
  std::string explain;        ///< EXPLAIN text (empty otherwise)
};

/// An in-memory analytical SQL database with iterative CTE support.
/// Thread-compatible: callers serialize access.
class Database {
 public:
  Database() = default;
  explicit Database(EngineOptions options) : options_(std::move(options)) {}

  EngineOptions& options() { return options_; }
  const EngineOptions& options() const { return options_; }
  Catalog& catalog() { return catalog_; }

  /// Parses and executes a single SQL statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated script; returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& sql);

  /// Convenience: Execute and return just the table.
  Result<TablePtr> Query(const std::string& sql);

  /// Registers an externally built table (bulk loading path used by the
  /// graph generators and benchmarks).
  Status RegisterTable(const std::string& name, TablePtr table,
                       std::optional<size_t> primary_key_col = std::nullopt);

  /// Builds and optimizes the Program for a SELECT statement without
  /// executing it (used by EXPLAIN, tests, and plan inspection).
  Result<Program> Plan(const std::string& sql);

  /// True while a BEGIN'd transaction is open.
  bool InTransaction() const { return tx_snapshot_.has_value(); }

 private:
  Result<QueryResult> ExecuteStatement(const Statement& stmt);
  Result<QueryResult> ExecuteSelect(const Statement& stmt);
  Result<QueryResult> ExecuteExplain(const Statement& stmt);
  Result<QueryResult> ExecuteCreateTable(const Statement& stmt);
  Result<QueryResult> ExecuteInsert(const Statement& stmt);
  Result<QueryResult> ExecuteUpdate(const Statement& stmt);
  Result<QueryResult> ExecuteDelete(const Statement& stmt);
  Result<QueryResult> ExecuteDrop(const Statement& stmt);

  /// Runs a bound-and-optimized program and returns its final table.
  Result<QueryResult> RunProgramToResult(Program program);

  /// Builds + optimizes a Program via `build`, running the static verifier
  /// (src/verify/) after binding, after each optimizer rule, and after the
  /// whole optimization pipeline, per options_.verify. All query paths
  /// (SELECT, EXPLAIN, CTAS, INSERT ... SELECT) funnel through here.
  Result<Program> PrepareProgram(
      const std::function<Result<Program>(class ProgramBuilder&)>& build);

  /// Runs one verifier pass over `program` and applies the configured
  /// policy: enforce -> kInternal, otherwise log + count the diagnostics
  /// into pending_verify_violations_ (surfaced via ExecStats).
  Status VerifyStage(const std::string& phase, const Program& program,
                     bool require_physical);

  ThreadPool* GetPool();
  FaultInjector* GetFaultInjector();
  ExecContext MakeContext(ResultRegistry* registry);

  Result<QueryResult> ExecuteTransactionControl(const Statement& stmt);
  Result<QueryResult> ExecuteCopy(const Statement& stmt);

  Catalog catalog_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  int pool_width_ = 0;

  /// Lazily created from options_.fault_injection and recreated whenever
  /// that config changes. The schedule restarts at hit 0 for every program
  /// execution (see MakeContext), so each statement's fault set is a pure
  /// function of the config.
  std::unique_ptr<FaultInjector> fault_injector_;

  /// Catalog snapshot taken at BEGIN; restored on ROLLBACK. Copy-on-write
  /// DML makes the snapshot a cheap shallow map copy (see Catalog).
  std::optional<std::unordered_map<std::string, CatalogEntry>> tx_snapshot_;

  /// Verifier diagnostics counted (not enforced) while planning the current
  /// statement; transferred into ExecStats::verify_violations by
  /// MakeContext.
  int64_t pending_verify_violations_ = 0;
};

}  // namespace dbspinner
