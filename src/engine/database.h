// Database: the public facade of dbspinner.
//
//   Database db;
//   db.Execute("CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
//   db.Execute("INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 1.0)");
//   auto result = db.Execute(
//       "WITH ITERATIVE pr (node, rank, delta) AS (... ITERATE ... UNTIL 10 "
//       "ITERATIONS) SELECT * FROM pr");
//   std::cout << result->table->ToString();

#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/options.h"
#include "exec/physical_plan.h"
#include "ivm/view_registry.h"
#include "mpp/thread_pool.h"
#include "parser/ast.h"
#include "plan/program.h"
#include "storage/catalog.h"
#include "storage/persistent_store.h"

namespace dbspinner {

/// The engine-wide writer slot. Unlike a plain std::mutex it is
/// thread-agnostic — an explicit transaction acquires it on the thread
/// running BEGIN and releases it from whichever thread runs COMMIT/ROLLBACK
/// (or destroys the Session) — and its wait is cancellable: Acquire polls
/// the caller's CancellationToken, so a writer queued behind a long
/// transaction can be killed or timed out instead of blocking
/// uninterruptibly.
/// Declared a CAPABILITY so the commit slot participates in the engine's
/// lock-ordering table (DESIGN.md §13: commit lock -> catalog publish ->
/// WAL append -> buffer latch — it is the OUTERMOST lock; nothing may be
/// held when acquiring it). Acquire/Release deliberately carry no
/// ACQUIRE/RELEASE attributes: clang's analysis is function-scoped and
/// same-thread, while this slot's hold is Status-conditional (a cancelled
/// Acquire returns without the slot) and spans statements and threads
/// (BEGIN..COMMIT). The cross-statement discipline is tracked dynamically
/// by SessionState::holds_commit_lock and TSan instead; the slot's own
/// internals remain statically checked through mu_.
class DBSP_CAPABILITY("commit_lock") CommitLock {
 public:
  /// Blocks until the slot is free. Returns kCancelled (without acquiring)
  /// if `cancel` fires first; an inert token waits unconditionally.
  Status Acquire(const CancellationToken& cancel) {
    MutexLock lock(mu_);
    while (held_) {
      if (cancel.IsCancelled()) return cancel.Check();
      cv_.wait_for(mu_, std::chrono::milliseconds(5));
    }
    held_ = true;
    return Status::OK();
  }

  /// Releases the slot. Callable from any thread.
  void Release() {
    {
      MutexLock lock(mu_);
      held_ = false;
    }
    cv_.notify_all();
  }

 private:
  Mutex mu_;
  std::condition_variable_any cv_;  ///< waits directly on mu_
  bool held_ DBSP_GUARDED_BY(mu_) = false;
};

/// Outcome of one statement.
struct QueryResult {
  TablePtr table;             ///< SELECT output; empty 0-col table otherwise
  int64_t rows_affected = 0;  ///< DML row count
  ExecStats stats;            ///< execution counters
  std::string explain;        ///< EXPLAIN text (empty otherwise)
};

/// Per-session execution state. Database::Execute runs on a built-in default
/// session; the concurrent server layer (src/server/session.h) owns one
/// SessionState per client session and calls ExecuteForSession. A
/// SessionState is single-flight: it must not execute two statements at
/// once (server::Session serializes its own queries).
struct SessionState {
  SessionState() = default;
  explicit SessionState(EngineOptions opts) : options(std::move(opts)) {}

  /// Per-session engine configuration (optimizer toggles, MPP width,
  /// verification, fault tolerance). Overriding it affects only this
  /// session's statements.
  EngineOptions options;

  /// Cancellation token for the session's in-flight statement. Inert by
  /// default; the server installs a live token per query.
  CancellationToken cancel;

  /// Scope prefix ("s<id>:") applied to every intermediate-result name the
  /// session's programs bind in their ResultRegistry, so temp names are
  /// session-scoped by construction.
  std::string temp_scope;

  /// Admission metadata for the current query, copied into ExecStats.
  int64_t queue_wait_us = 0;
  bool queued = false;

  /// Identity of the statement being executed, for durable executor
  /// checkpoints (DESIGN.md §12): a hash of the SQL text (and script
  /// position), set by ExecuteForSession. A killed iterative query re-issued
  /// with the same text resumes from its last durable checkpoint.
  uint64_t durable_program_tag = 0;

  /// True while a BEGIN'd transaction is open on this session.
  bool InTransaction() const { return tx_snapshot.has_value(); }

  // --- engine-managed state below; callers should not touch ---------------

  /// Catalog snapshot taken at BEGIN; restored on ROLLBACK. Copy-on-write
  /// DML makes the snapshot a cheap shallow map copy (see Catalog).
  std::optional<std::unordered_map<std::string, CatalogEntry>> tx_snapshot;

  /// True from BEGIN to COMMIT/ROLLBACK: an explicit transaction occupies
  /// the engine's single writer slot (Database::commit_lock_), so other
  /// sessions' DML/DDL waits until it finishes (reads never wait). The slot
  /// is thread-agnostic — COMMIT may run on a different thread than BEGIN —
  /// and a session holding it bypasses scheduler admission, so the
  /// releasing statement can never queue behind writers blocked on the
  /// slot itself.
  bool holds_commit_lock = false;

  /// Verifier diagnostics counted (not enforced) while planning the
  /// session's current statement; transferred into ExecStats.
  int64_t pending_verify_violations = 0;

  /// View-maintenance work done while preparing the session's current
  /// statement (syncing referenced views to the read snapshot);
  /// transferred into ExecStats like the verifier count above.
  ivm::IvmCounters pending_ivm;

  /// Session-materialized fault injector (from options.fault_injection).
  std::unique_ptr<FaultInjector> fault_injector;
};

/// An in-memory analytical SQL database with iterative CTE support.
///
/// Concurrency model (DESIGN.md §10): the facade is safe for concurrent use
/// through *distinct sessions* — each query plans and executes against a
/// pinned catalog snapshot, so readers never block and never observe a
/// half-applied DDL/DML. Write statements (CREATE/DROP/INSERT/UPDATE/
/// DELETE/COPY FROM, and RegisterTable) serialize on a single engine-wide
/// commit lock and publish a new catalog version on completion (versioned
/// swap); explicit transactions hold that lock from BEGIN to
/// COMMIT/ROLLBACK. The lock wait is cancellable (it polls the session's
/// CancellationToken) and release is thread-agnostic, so a transaction's
/// statements need not share a thread. All sessions
/// multiplex one shared ThreadPool. What still serializes: writers against
/// each other, and statements *within* one session (a SessionState is
/// single-flight). The no-argument Execute() runs on a built-in default
/// session and is therefore thread-compatible, exactly like the historical
/// API.
class Database {
 public:
  Database() = default;
  explicit Database(EngineOptions options)
      : default_session_(std::move(options)) {}

  /// The default session's options (historical single-session API).
  EngineOptions& options() { return default_session_.options; }
  const EngineOptions& options() const { return default_session_.options; }
  Catalog& catalog() { return catalog_; }

  /// Parses and executes a single SQL statement on the default session.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated script; returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& sql);

  /// Convenience: Execute and return just the table.
  Result<TablePtr> Query(const std::string& sql);

  /// Session-scoped execution: the entry point used by server::Session.
  /// Safe to call concurrently with other sessions' statements; `session`
  /// itself must not be shared between concurrent calls.
  Result<QueryResult> ExecuteForSession(SessionState* session,
                                        const std::string& sql);
  Result<QueryResult> ExecuteScriptForSession(SessionState* session,
                                              const std::string& sql);

  /// Registers an externally built table (bulk loading path used by the
  /// graph generators and benchmarks). Thread-safe: takes the engine's
  /// commit lock so it serializes with write statements like every other
  /// catalog mutation.
  Status RegisterTable(const std::string& name, TablePtr table,
                       std::optional<size_t> primary_key_col = std::nullopt);

  /// Builds and optimizes the Program for a SELECT statement without
  /// executing it (used by EXPLAIN, tests, and plan inspection). Plans
  /// against a pinned catalog snapshot.
  Result<Program> Plan(const std::string& sql);

  /// True while a BEGIN'd transaction is open on the default session.
  bool InTransaction() const { return default_session_.InTransaction(); }

  /// The durable storage layer, or nullptr when persistence is off (or not
  /// yet opened — it opens lazily at the first statement). Exposed for
  /// tests and benchmarks that assert on storage counters.
  StorageManager* storage_manager() { return storage_.get(); }

  /// Registered materialized views (name, definition, plan kind, version,
  /// queued deltas), name-ordered. Used by the shell's \views command and
  /// tests.
  std::vector<ivm::ViewRegistry::ViewInfo> ListViews() { return views_.List(); }

  /// Admission hook for post-commit view maintenance: called with the
  /// committing session's cancellation token and the drain closure. The
  /// server layer installs a scheduler-backed gate so maintenance competes
  /// for execution slots like client queries (and is cancellable); without
  /// a gate the drain runs inline. Install nullptr to reset.
  using MaintenanceGate = std::function<Status(
      const CancellationToken& cancel, const std::function<Status()>& drain)>;
  void set_maintenance_gate(MaintenanceGate gate) {
    MutexLock lock(gate_mu_);
    maintenance_gate_ = std::move(gate);
  }

 private:
  /// Snapshot-consistent contents of every registered view a statement's
  /// queries reference, keyed by view name. Bound as CTE overlays so view
  /// scans compose with the ordinary morsel pipeline.
  using ViewBindings = std::vector<std::pair<std::string, TablePtr>>;

  Result<QueryResult> ExecuteStatement(SessionState& ss,
                                       const Statement& stmt);
  Result<QueryResult> ExecuteSelect(SessionState& ss, Catalog* cat,
                                    const Statement& stmt);
  Result<QueryResult> ExecuteExplain(SessionState& ss, Catalog* cat,
                                     const Statement& stmt);
  Result<QueryResult> ExecuteCreateTable(SessionState& ss,
                                         const Statement& stmt);
  Result<QueryResult> ExecuteInsert(SessionState& ss, const Statement& stmt);
  Result<QueryResult> ExecuteUpdate(SessionState& ss, const Statement& stmt);
  Result<QueryResult> ExecuteDelete(SessionState& ss, const Statement& stmt);
  Result<QueryResult> ExecuteDrop(SessionState& ss, const Statement& stmt);

  // --- incremental view maintenance (src/ivm/, DESIGN.md §14) -------------

  Result<QueryResult> ExecuteCreateView(SessionState& ss,
                                        const Statement& stmt);
  Result<QueryResult> ExecuteDropView(SessionState& ss, const Statement& stmt);
  Result<QueryResult> ExecuteRefreshView(SessionState& ss,
                                         const Statement& stmt);

  /// The registry's QueryRunner: executes a maintenance query for `ss`
  /// against a pinned snapshot through the ordinary
  /// optimizer/verifier/morsel pipeline, with the given seed tables bound
  /// as CTE overlays. Durable checkpointing is suppressed (maintenance is
  /// re-derivable from the queue).
  ivm::QueryRunner MakeViewRunner(SessionState& ss);

  /// Collects the snapshot-consistent contents of every registered view the
  /// statement's queries reference (syncing pending deltas up to the
  /// snapshot's version first). View names shadowed by the statement's own
  /// CTEs are skipped, per SQL scoping.
  Status CollectViewBindings(SessionState& ss, const Catalog& snapshot,
                             const Statement& stmt, ViewBindings* out);

  /// Post-commit maintenance: folds every queued delta, through the
  /// installed maintenance gate when one is set. Called after the commit
  /// lock is released; failures/cancellation leave queues intact (the lazy
  /// sync in CollectViewBindings is the correctness backstop).
  void MaintainViews(SessionState& ss, ExecStats* stats);

  /// Captures one committed statement's (inserts, deletes) against `table`
  /// for dependent views. Commit lock held; called after the catalog
  /// publish so the pinned snapshot includes the mutation.
  void CaptureDelta(SessionState& ss, const std::string& table,
                    TablePtr inserts, TablePtr deletes);

  /// Rewrites the reserved __ivm_views storage table to match the registry
  /// (views survive restarts through the ordinary WAL/manifest path).
  Status PersistViewCatalog();

  /// PrepareProgram with each view binding installed as a CTE overlay and
  /// recorded in Program::seeded_results for the dataflow verifier.
  Result<Program> PrepareProgramWithViews(
      SessionState& ss, Catalog* cat, const ViewBindings& views,
      const std::function<Result<Program>(class ProgramBuilder&)>& build);

  /// Runs a bound-and-optimized program and returns its final table.
  /// `cat` is the catalog view the program was planned against. Each
  /// (name, table) in `seeds` is pre-bound into the program's result
  /// registry under the view-seed name the binder overlays resolve to.
  Result<QueryResult> RunProgramToResult(SessionState& ss, Catalog* cat,
                                         Program program,
                                         const ViewBindings& seeds = {});

  /// Builds + optimizes a Program via `build` against the catalog view
  /// `cat`, running the static verifier (src/verify/) after binding, after
  /// each optimizer rule, and after the whole optimization pipeline, per
  /// the session's verify options. All query paths (SELECT, EXPLAIN, CTAS,
  /// INSERT ... SELECT) funnel through here.
  Result<Program> PrepareProgram(
      SessionState& ss, Catalog* cat,
      const std::function<Result<Program>(class ProgramBuilder&)>& build);

  /// Runs one verifier pass over `program` and applies the configured
  /// policy: enforce -> kInternal, otherwise log + count the diagnostics
  /// into the session's pending count (surfaced via ExecStats).
  Status VerifyStage(SessionState& ss, Catalog* cat, const std::string& phase,
                     const Program& program, bool require_physical);

  /// The engine-wide worker pool shared by all sessions (the scheduler
  /// multiplexes queries onto it; no per-query pools). Grow-only: a width
  /// increase retires the old pool without destroying it, so in-flight
  /// queries keep a valid pointer.
  ThreadPool* GetPool(SessionState& ss);
  FaultInjector* GetFaultInjector(SessionState& ss);
  ExecContext MakeContext(SessionState& ss, Catalog* cat,
                          ResultRegistry* registry);

  Result<QueryResult> ExecuteTransactionControl(SessionState& ss,
                                                const Statement& stmt);
  Result<QueryResult> ExecuteCopy(SessionState& ss, const Statement& stmt);

  /// Opens the storage layer on first use (per the *constructor* session's
  /// persistence options — persistence is engine-level, per-session
  /// overrides of it are ignored) and materializes recovered tables into
  /// the catalog. Returns the sticky open/recovery failure afterwards, so a
  /// corrupt database directory fails every statement with the same typed
  /// error instead of silently running in-memory.
  Status EnsureStorageOpen();

  /// Durable-commit helpers: WAL-log the operation (the commit point)
  /// before the in-memory catalog publish. No-ops when persistence is off.
  Status PersistUpsert(const std::string& name, std::optional<size_t> pk,
                       const TablePtr& table);
  Status PersistDrop(const std::string& name);

  Catalog catalog_;

  /// The built-in session behind the historical single-caller API.
  SessionState default_session_;

  /// Engine-wide writer slot: every DDL/DML statement (and every explicit
  /// transaction, across its whole lifetime) holds this while it reads and
  /// republishes the catalog, making read-modify-write statements atomic
  /// against each other. Readers never take it. Waits poll the acquiring
  /// session's CancellationToken (see CommitLock).
  CommitLock commit_lock_;

  /// Shared worker pool (see GetPool). Leaf lock: held only for the pool
  /// lookup/grow, never while acquiring any other engine lock.
  Mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_ DBSP_GUARDED_BY(pool_mu_);
  std::vector<std::unique_ptr<ThreadPool>> retired_pools_
      DBSP_GUARDED_BY(pool_mu_);

  /// Durable storage (DESIGN.md §12). Opened lazily by EnsureStorageOpen;
  /// `storage_faults_` is the engine-owned injector feeding the storage
  /// abort/injection sites (its hit counts span the whole process, unlike
  /// the per-statement session injectors). `storage_` itself is not
  /// GUARDED_BY: it is written exactly once under storage_mu_ and read
  /// lock-free afterwards — every statement path passes through
  /// EnsureStorageOpen's lock first, which publishes the pointer.
  Mutex storage_mu_;
  bool storage_init_done_ DBSP_GUARDED_BY(storage_mu_) = false;
  Status storage_status_ DBSP_GUARDED_BY(storage_mu_) = Status::OK();
  std::unique_ptr<FaultInjector> storage_faults_;
  std::unique_ptr<StorageManager> storage_;

  /// Registered materialized views and their maintenance state. The
  /// registry synchronizes itself (DESIGN.md §14): its map lock is a leaf
  /// and its per-view locks nest inside the commit lock on the capture
  /// path only.
  ivm::ViewRegistry views_;

  /// Leaf lock for the maintenance-gate hook (swap/copy only; never held
  /// while the gate runs).
  Mutex gate_mu_;
  MaintenanceGate maintenance_gate_ DBSP_GUARDED_BY(gate_mu_);
};

}  // namespace dbspinner
