// The paper's evaluation queries (§VII), adapted to dbspinner's dialect, and
// their stored-procedure equivalents used as the Fig 11 baseline.
//
// All queries expect:
//   edges(src BIGINT, dst BIGINT, weight DOUBLE)
//   vertexstatus(node BIGINT, status BIGINT)     (for the -VS variants)

#pragma once

#include <cstdint>
#include <string>

#include "engine/procedure.h"

namespace dbspinner {
namespace workloads {

/// PageRank (paper Fig 2): full-dataset update per iteration; no WHERE in
/// Ri, so the rename optimization applies.
std::string PRQuery(int iterations);

/// PR-VS (§V-A): PR restricted to available nodes via a join with
/// vertexstatus; the loop-invariant edges-vertexstatus join is the
/// common-result target.
std::string PRVSQuery(int iterations);

/// Single-source shortest path (paper Fig 7). Ri has a WHERE clause, so
/// updates merge by key.
std::string SSSPQuery(int iterations, int64_t source_node,
                      int64_t target_node);

/// SSSP restricted to available nodes (the Fig 9/11 variant).
std::string SSSPVSQuery(int iterations, int64_t source_node,
                        int64_t target_node);

/// Forecast-of-friends (paper Fig 6): cheap Ri (no joins/aggregates);
/// Qf samples with MOD(node, mod_x) = 0, the Fig 10 pushdown target.
std::string FFQuery(int iterations, int64_t mod_x, int limit = 10);

/// FF with a Delta termination condition instead of a fixed count
/// (exercises the third Tc type; converges when fewer than `delta_bound`
/// rows change between iterations).
std::string FFDeltaQuery(int64_t delta_bound, int64_t mod_x);

/// SSSP with an UNTIL ALL(...) data condition: stop when every reachable
/// node's distance has settled (delta = distance).
std::string SSSPDataConditionQuery(int64_t source_node, int64_t target_node);

// --- stored-procedure baselines (Fig 11 / Fig 1 style) ----------------------

/// PR-VS as a multi-statement procedure: temp tables + DELETE/INSERT/UPDATE
/// per iteration, one statement at a time.
Procedure PRVSProcedure(int iterations);

/// SSSP-VS as a procedure.
Procedure SSSPVSProcedure(int iterations, int64_t source_node,
                          int64_t target_node);

/// FF as a procedure (mod_x applied only in the final SELECT — procedures
/// cannot push predicates across statements).
Procedure FFProcedure(int iterations, int64_t mod_x);

}  // namespace workloads
}  // namespace dbspinner
