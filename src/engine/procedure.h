// Stored-procedure runner: the paper's comparison baseline (§VII-E, Fig 11).
//
// A Procedure is a list of SQL statements with loop control, executed
// statement-at-a-time: every statement goes through the full
// parse -> bind -> optimize -> plan -> execute path in isolation, touching
// real temp tables with DDL/DML — exactly the per-statement overhead the
// paper attributes to procedural solutions (no cross-statement optimization,
// no rename, no common-result reuse, repeated planning).

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"

namespace dbspinner {

/// A procedural script: statements and counted loops (nesting allowed).
class Procedure {
 public:
  /// Appends one SQL statement at the current nesting level.
  Procedure& Add(std::string sql);

  /// Opens a loop executed `times` times. Must be closed with EndLoop().
  Procedure& BeginLoop(int64_t times);
  Procedure& EndLoop();

  /// Runs the procedure against `db`. Returns the result of the last
  /// executed statement. Fails if loops are unbalanced.
  Result<QueryResult> Run(Database* db) const;

  /// Total statements that would execute (loops expanded).
  int64_t TotalStatements() const;

 private:
  struct Op {
    enum class Kind { kSql, kLoop };
    Kind kind;
    std::string sql;
    int64_t times = 0;
    std::vector<Op> body;
  };

  static Result<QueryResult> RunOps(Database* db,
                                    const std::vector<Op>& ops,
                                    QueryResult last);
  static int64_t CountOps(const std::vector<Op>& ops);

  std::vector<Op> ops_;
  std::vector<std::vector<Op>*> stack_;  ///< open loop bodies
  bool invalid_ = false;

  std::vector<Op>* Current() {
    return stack_.empty() ? &ops_ : stack_.back();
  }
};

}  // namespace dbspinner
