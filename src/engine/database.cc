#include "engine/database.h"

#include "binder/binder.h"
#include "exec/physical_planner.h"
#include "exec/program_executor.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "plan/plan_printer.h"
#include "rewrite/iterative_rewrite.h"
#include "storage/csv.h"
#include "verify/verify.h"

namespace dbspinner {

ThreadPool* Database::GetPool() {
  if (options_.num_workers <= 1) return nullptr;
  if (!pool_ || pool_width_ != options_.num_workers) {
    pool_ = std::make_unique<ThreadPool>(options_.num_workers);
    pool_width_ = options_.num_workers;
  }
  return pool_.get();
}

FaultInjector* Database::GetFaultInjector() {
  if (!options_.fault_injection.enabled) {
    // Disabling drops the injector, so a later re-enable — even with the
    // identical config — starts a fresh schedule from hit 0. Tests rely on
    // this to reproduce a schedule by toggling the config off and on.
    fault_injector_.reset();
    return nullptr;
  }
  if (!fault_injector_ ||
      fault_injector_->config() != options_.fault_injection) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.fault_injection);
  }
  return fault_injector_.get();
}

ExecContext Database::MakeContext(ResultRegistry* registry) {
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.registry = registry;
  ctx.options = &options_;
  ctx.pool = GetPool();
  ctx.faults = GetFaultInjector();
  // Surface verifier findings counted (not enforced) during planning in the
  // execution stats of the statement they belong to.
  ctx.stats.verify_violations = pending_verify_violations_;
  pending_verify_violations_ = 0;
  // Restart the schedule at hit 0 for every program execution: the fault
  // set a statement sees is a pure function of the config, independent of
  // what ran before it. Repro lines stay one statement long.
  if (ctx.faults != nullptr) ctx.faults->Reset();
  return ctx;
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  return ExecuteStatement(*stmt);
}

Result<QueryResult> Database::ExecuteScript(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) {
    return Status::InvalidArgument("empty script");
  }
  QueryResult last;
  for (const auto& stmt : stmts) {
    DBSP_ASSIGN_OR_RETURN(last, ExecuteStatement(*stmt));
  }
  return last;
}

Result<TablePtr> Database::Query(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return result.table;
}

Status Database::RegisterTable(const std::string& name, TablePtr table,
                               std::optional<size_t> primary_key_col) {
  return catalog_.CreateTable(name, std::move(table), primary_key_col);
}

Result<Program> Database::Plan(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  const Statement* target = stmt.get();
  if (target->kind == StatementKind::kExplain) {
    target = target->explained.get();
  }
  if (target->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("Plan() supports SELECT statements only");
  }
  return PrepareProgram(
      [&](ProgramBuilder& builder) { return builder.BuildSelect(*target); });
}

Status Database::VerifyStage(const std::string& phase, const Program& program,
                             bool require_physical) {
  if (!options_.verify.verify_plans) return Status::OK();
  verify::VerifyContext vctx;
  vctx.catalog = &catalog_;
  vctx.require_physical = require_physical;
  verify::VerifyReport report = verify::VerifyProgram(program, vctx);
  report.phase = phase;
  return verify::EnforceOrCount(report, options_.verify.enforce,
                                &pending_verify_violations_);
}

Result<Program> Database::PrepareProgram(
    const std::function<Result<Program>(ProgramBuilder&)>& build) {
  ProgramBuilder builder(&catalog_, options_.optimizer);
  DBSP_ASSIGN_OR_RETURN(Program program, build(builder));
  DBSP_RETURN_NOT_OK(
      VerifyStage("after-binding", program, /*require_physical=*/false));
  Optimizer optimizer(options_.optimizer, &catalog_);
  if (options_.verify.verify_plans) {
    optimizer.set_rule_hook([this](const char* rule, const Program& p) {
      return VerifyStage(std::string("after-") + rule, p,
                         /*require_physical=*/false);
    });
  }
  DBSP_RETURN_NOT_OK(optimizer.OptimizeProgram(&program));
  DBSP_RETURN_NOT_OK(
      VerifyStage("after-optimize", program, /*require_physical=*/false));
  return program;
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(stmt);
    case StatementKind::kExplain:
      return ExecuteExplain(stmt);
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(stmt);
    case StatementKind::kInsert:
      return ExecuteInsert(stmt);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt);
    case StatementKind::kDropTable:
      return ExecuteDrop(stmt);
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return ExecuteTransactionControl(stmt);
    case StatementKind::kCopy:
      return ExecuteCopy(stmt);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteCopy(const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  QueryResult result;
  result.table = Table::Make(Schema());
  if (stmt.copy_to) {
    DBSP_RETURN_NOT_OK(
        WriteCsv(*entry->table, stmt.copy_path, stmt.copy_delimiter));
    result.rows_affected = static_cast<int64_t>(entry->table->num_rows());
    return result;
  }
  DBSP_ASSIGN_OR_RETURN(
      TablePtr imported,
      ReadCsv(entry->table->schema(), stmt.copy_path, stmt.copy_delimiter));
  // Append to a COW clone, like INSERT.
  TablePtr updated = entry->table->Clone();
  updated->AppendAll(*imported);
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  result.rows_affected = static_cast<int64_t>(imported->num_rows());
  return result;
}

Result<QueryResult> Database::ExecuteTransactionControl(const Statement& stmt) {
  QueryResult result;
  result.table = Table::Make(Schema());
  switch (stmt.kind) {
    case StatementKind::kBegin:
      if (tx_snapshot_.has_value()) {
        return Status::InvalidArgument("a transaction is already in progress");
      }
      tx_snapshot_ = catalog_.Snapshot();
      return result;
    case StatementKind::kCommit:
      if (!tx_snapshot_.has_value()) {
        return Status::InvalidArgument("no transaction in progress");
      }
      tx_snapshot_.reset();
      return result;
    case StatementKind::kRollback:
      if (!tx_snapshot_.has_value()) {
        return Status::InvalidArgument("no transaction in progress");
      }
      catalog_.Restore(std::move(*tx_snapshot_));
      tx_snapshot_.reset();
      return result;
    default:
      return Status::Internal("not a transaction-control statement");
  }
}

Result<QueryResult> Database::RunProgramToResult(Program program) {
  DBSP_RETURN_NOT_OK(PlanProgram(&program));
  DBSP_RETURN_NOT_OK(
      VerifyStage("after-compile", program, /*require_physical=*/true));
  ResultRegistry registry;
  ExecContext ctx = MakeContext(&registry);
  DBSP_ASSIGN_OR_RETURN(TablePtr table, RunProgram(program, &ctx));
  QueryResult result;
  result.table = std::move(table);
  result.stats = ctx.stats;
  return result;
}

Result<QueryResult> Database::ExecuteSelect(const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(
      Program program, PrepareProgram([&](ProgramBuilder& builder) {
        return builder.BuildSelect(stmt);
      }));
  return RunProgramToResult(std::move(program));
}

Result<QueryResult> Database::ExecuteExplain(const Statement& stmt) {
  const Statement& inner = *stmt.explained;
  if (inner.kind != StatementKind::kSelect) {
    return Status::NotImplemented("EXPLAIN supports SELECT statements only");
  }
  DBSP_ASSIGN_OR_RETURN(
      Program program, PrepareProgram([&](ProgramBuilder& builder) {
        return builder.BuildSelect(inner);
      }));
  QueryResult result;
  if (stmt.explain_analyze) {
    // EXPLAIN ANALYZE: actually run the program with per-step profiling
    // and annotate each step with executions / time / rows.
    DBSP_RETURN_NOT_OK(PlanProgram(&program));
    DBSP_RETURN_NOT_OK(
        VerifyStage("after-compile", program, /*require_physical=*/true));
    ResultRegistry registry;
    ExecContext ctx = MakeContext(&registry);
    ctx.profiling = true;
    DBSP_ASSIGN_OR_RETURN(TablePtr ignored, RunProgram(program, &ctx));
    (void)ignored;
    result.explain =
        ExplainProgramWithProfile(program, ctx.profile, /*verbose=*/false);
    // Execution counters (including the fault-tolerance ones:
    // checkpoints_taken / restores / step_retries) render below the plan.
    result.explain += "\nStats: " + ctx.stats.ToString();
    result.stats = ctx.stats;
  } else {
    result.explain = ExplainProgram(program, /*verbose=*/true);
  }
  if (stmt.explain_cost) {
    CostModel model(&catalog_);
    result.explain += "\n" + model.ExplainCost(program);
  }
  if (stmt.explain_verify) {
    // EXPLAIN (VERIFY): render the verifier's report for the fully
    // optimized (and, under ANALYZE, compiled) program, regardless of the
    // verify_plans option.
    verify::VerifyContext vctx;
    vctx.catalog = &catalog_;
    vctx.require_physical = stmt.explain_analyze;
    verify::VerifyReport report = verify::VerifyProgram(program, vctx);
    report.phase = "final program";
    result.explain += "\n" + report.ToString();
  }
  // EXPLAIN also returns its text as a one-column table for convenience.
  Schema schema;
  schema.AddColumn("plan", TypeId::kString);
  result.table = Table::Make(schema);
  result.table->AppendRow({Value::String(result.explain)});
  return result;
}

Result<QueryResult> Database::ExecuteCreateTable(const Statement& stmt) {
  if (stmt.if_not_exists && catalog_.Exists(stmt.table_name)) {
    return QueryResult{};
  }
  if (stmt.ctas_query) {
    // CREATE TABLE ... AS SELECT: the query's result seeds the table.
    DBSP_ASSIGN_OR_RETURN(
        Program program, PrepareProgram([&](ProgramBuilder& builder) {
          return builder.BuildQuery(stmt.ctes, *stmt.ctas_query);
        }));
    DBSP_ASSIGN_OR_RETURN(QueryResult rows,
                          RunProgramToResult(std::move(program)));
    DBSP_RETURN_NOT_OK(
        catalog_.CreateTable(stmt.table_name, rows.table->Clone()));
    QueryResult result;
    result.table = Table::Make(Schema());
    result.rows_affected = static_cast<int64_t>(rows.table->num_rows());
    result.stats = rows.stats;
    return result;
  }
  Schema schema;
  std::optional<size_t> pk;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    schema.AddColumn(stmt.columns[i].name, stmt.columns[i].type);
    if (stmt.columns[i].primary_key) {
      if (pk.has_value()) {
        return Status::InvalidArgument(
            "multiple PRIMARY KEY columns are not supported");
      }
      pk = i;
    }
  }
  DBSP_RETURN_NOT_OK(
      catalog_.CreateTable(stmt.table_name, Table::Make(schema), pk));
  QueryResult result;
  result.table = Table::Make(Schema());
  return result;
}

Result<QueryResult> Database::ExecuteInsert(const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  const Schema& schema = entry->table->schema();

  // Map target columns: explicit list or all columns positionally.
  std::vector<size_t> targets;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const auto& name : stmt.insert_columns) {
      auto idx = schema.FindColumn(name);
      if (!idx.has_value()) {
        return Status::BindError("column '" + name +
                                 "' does not exist in table '" +
                                 stmt.table_name + "'");
      }
      targets.push_back(*idx);
    }
  }

  // Copy-on-write so previously returned results that alias this table's
  // storage stay stable.
  TablePtr updated = entry->table->Clone();
  int64_t inserted = 0;

  if (!stmt.insert_values.empty()) {
    Binder binder(&catalog_);
    Binder::BindContext empty_ctx;
    static const TablePtr kOneRow = [] {
      auto t = Table::Make(Schema());
      return t;
    }();
    for (const auto& value_row : stmt.insert_values) {
      if (value_row.size() != targets.size()) {
        return Status::BindError("INSERT row has " +
                                 std::to_string(value_row.size()) +
                                 " values, expected " +
                                 std::to_string(targets.size()));
      }
      std::vector<Value> row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < value_row.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                              binder.BindScalarExpr(*value_row[i], empty_ctx));
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bound, *kOneRow, 0));
        DBSP_ASSIGN_OR_RETURN(row[targets[i]],
                              v.CastTo(schema.column(targets[i]).type));
      }
      updated->AppendRow(row);
      ++inserted;
    }
  } else if (stmt.insert_query) {
    DBSP_ASSIGN_OR_RETURN(
        Program program, PrepareProgram([&](ProgramBuilder& builder) {
          return builder.BuildQuery(stmt.ctes, *stmt.insert_query);
        }));
    DBSP_ASSIGN_OR_RETURN(QueryResult rows, RunProgramToResult(std::move(program)));
    if (rows.table->num_columns() != targets.size()) {
      return Status::BindError(
          "INSERT source returns " +
          std::to_string(rows.table->num_columns()) + " columns, expected " +
          std::to_string(targets.size()));
    }
    for (size_t r = 0; r < rows.table->num_rows(); ++r) {
      std::vector<Value> row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < targets.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(
            row[targets[i]],
            rows.table->GetValue(r, i).CastTo(
                schema.column(targets[i]).type));
      }
      updated->AppendRow(row);
      ++inserted;
    }
  }

  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = inserted;
  return result;
}

Result<QueryResult> Database::ExecuteUpdate(const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  TablePtr target = entry->table;
  const Schema& schema = target->schema();
  size_t ncols = schema.num_columns();

  Binder binder(&catalog_);

  // Resolve SET target columns.
  std::vector<size_t> set_cols;
  for (const auto& [name, expr] : stmt.set_clauses) {
    auto idx = schema.FindColumn(name);
    if (!idx.has_value()) {
      return Status::BindError("column '" + name +
                               "' does not exist in table '" +
                               stmt.table_name + "'");
    }
    set_cols.push_back(*idx);
    (void)expr;
  }

  if (!stmt.update_from) {
    // Simple UPDATE: evaluate WHERE and SET over the table itself.
    Binder::BindContext ctx;
    ctx.schema = schema;
    ctx.entries = {Binder::ScopeEntry{"", stmt.table_name, 0, ncols}};
    BoundExprPtr where;
    if (stmt.where) {
      DBSP_ASSIGN_OR_RETURN(where, binder.BindScalarExpr(*stmt.where, ctx));
    }
    std::vector<BoundExprPtr> set_exprs;
    for (const auto& [name, expr] : stmt.set_clauses) {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            binder.BindScalarExpr(*expr, ctx));
      set_exprs.push_back(std::move(bound));
    }
    auto updated = Table::Make(schema);
    updated->Reserve(target->num_rows());
    int64_t affected = 0;
    for (size_t r = 0; r < target->num_rows(); ++r) {
      bool hit = true;
      if (where) {
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*where, *target, r));
        hit = !v.is_null() && v.bool_value();
      }
      if (!hit) {
        updated->AppendRowFrom(*target, r);
        continue;
      }
      std::vector<Value> row = target->GetRow(r);
      for (size_t i = 0; i < set_cols.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*set_exprs[i], *target, r));
        DBSP_ASSIGN_OR_RETURN(row[set_cols[i]],
                              v.CastTo(schema.column(set_cols[i]).type));
      }
      updated->AppendRow(row);
      ++affected;
    }
    DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
    QueryResult result;
    result.table = Table::Make(Schema());
    result.rows_affected = affected;
    return result;
  }

  // UPDATE ... FROM: join the target (extended with a row id) against the
  // FROM relation on the WHERE condition, then apply SET per matched row.
  Schema ext_schema = schema;
  ext_schema.AddColumn("__rowid", TypeId::kInt64);
  std::vector<ColumnVectorPtr> ext_cols;
  for (size_t c = 0; c < ncols; ++c) ext_cols.push_back(target->column_ptr(c));
  auto rowid = std::make_shared<ColumnVector>(TypeId::kInt64);
  rowid->Reserve(target->num_rows());
  for (size_t r = 0; r < target->num_rows(); ++r) {
    rowid->AppendInt64(static_cast<int64_t>(r));
  }
  ext_cols.push_back(rowid);
  TablePtr ext = Table::FromColumns(ext_schema, std::move(ext_cols));

  Binder::BindContext from_ctx;
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr from_plan,
                        binder.BindTableRef(*stmt.update_from, &from_ctx));

  // Combined context: target columns first (scoped by table name), then the
  // FROM scopes shifted past the row id column.
  Binder::BindContext ctx;
  ctx.schema = ext_schema;
  for (const auto& col : from_ctx.schema.columns()) {
    ctx.schema.AddColumn(col.name, col.type);
  }
  ctx.entries = {Binder::ScopeEntry{"", stmt.table_name, 0, ncols}};
  for (Binder::ScopeEntry e : from_ctx.entries) {
    e.start += ext_schema.num_columns();
    ctx.entries.push_back(e);
  }

  auto join = std::make_unique<LogicalOp>();
  join->kind = LogicalOpKind::kJoin;
  join->join_type = JoinType::kInner;
  join->output_schema = ctx.schema;
  join->children.push_back(
      MakeScan(ScanSource::kResult, "__update_target", ext_schema));
  join->children.push_back(std::move(from_plan));
  LogicalOpPtr plan = std::move(join);
  if (stmt.where) {
    DBSP_ASSIGN_OR_RETURN(BoundExprPtr where,
                          binder.BindScalarExpr(*stmt.where, ctx));
    plan = MakeFilter(std::move(where), std::move(plan));
  }
  std::vector<BoundExprPtr> set_exprs;
  for (const auto& [name, expr] : stmt.set_clauses) {
    DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          binder.BindScalarExpr(*expr, ctx));
    set_exprs.push_back(std::move(bound));
  }

  Optimizer optimizer(options_.optimizer, &catalog_);
  DBSP_RETURN_NOT_OK(optimizer.OptimizePlan(&plan));
  if (options_.verify.verify_plans) {
    // Standalone-plan path (no Program): run just the plan checker.
    verify::VerifyContext vctx;
    vctx.catalog = &catalog_;
    verify::VerifyReport report = verify::VerifyPlan(*plan, vctx);
    report.phase = "update-from";
    DBSP_RETURN_NOT_OK(verify::EnforceOrCount(
        report, options_.verify.enforce, &pending_verify_violations_));
  }
  DBSP_ASSIGN_OR_RETURN(PhysicalOpPtr physical, CreatePhysicalPlan(*plan));

  ResultRegistry registry;
  registry.Put("__update_target", ext);
  ExecContext exec_ctx = MakeContext(&registry);
  DBSP_ASSIGN_OR_RETURN(TablePtr joined, physical->Execute(exec_ctx));

  // Apply the first match per row id.
  size_t rowid_col = ncols;  // __rowid ordinal in the joined output
  std::vector<int64_t> match_of(target->num_rows(), -1);
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    int64_t id = joined->GetValue(r, rowid_col).int64_value();
    if (match_of[static_cast<size_t>(id)] < 0) {
      match_of[static_cast<size_t>(id)] = static_cast<int64_t>(r);
    }
  }
  auto updated = Table::Make(schema);
  updated->Reserve(target->num_rows());
  int64_t affected = 0;
  for (size_t r = 0; r < target->num_rows(); ++r) {
    int64_t m = match_of[r];
    if (m < 0) {
      updated->AppendRowFrom(*target, r);
      continue;
    }
    std::vector<Value> row = target->GetRow(r);
    for (size_t i = 0; i < set_cols.size(); ++i) {
      DBSP_ASSIGN_OR_RETURN(
          Value v, EvaluateExpr(*set_exprs[i], *joined,
                                static_cast<size_t>(m)));
      DBSP_ASSIGN_OR_RETURN(row[set_cols[i]],
                            v.CastTo(schema.column(set_cols[i]).type));
    }
    updated->AppendRow(row);
    ++affected;
  }
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = affected;
  result.stats = exec_ctx.stats;
  return result;
}

Result<QueryResult> Database::ExecuteDelete(const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  TablePtr target = entry->table;
  const Schema& schema = target->schema();

  BoundExprPtr where;
  if (stmt.where) {
    Binder binder(&catalog_);
    Binder::BindContext ctx;
    ctx.schema = schema;
    ctx.entries = {
        Binder::ScopeEntry{"", stmt.table_name, 0, schema.num_columns()}};
    DBSP_ASSIGN_OR_RETURN(where, binder.BindScalarExpr(*stmt.where, ctx));
  }

  std::vector<uint32_t> keep;
  int64_t deleted = 0;
  for (size_t r = 0; r < target->num_rows(); ++r) {
    bool hit = true;
    if (where) {
      DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*where, *target, r));
      hit = !v.is_null() && v.bool_value();
    }
    if (hit) {
      ++deleted;
    } else {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  DBSP_RETURN_NOT_OK(
      catalog_.ReplaceContents(stmt.table_name, target->Gather(keep)));
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = deleted;
  return result;
}

Result<QueryResult> Database::ExecuteDrop(const Statement& stmt) {
  DBSP_RETURN_NOT_OK(catalog_.DropTable(stmt.table_name, stmt.if_exists));
  QueryResult result;
  result.table = Table::Make(Schema());
  return result;
}

}  // namespace dbspinner
