#include "engine/database.h"

#include <unordered_set>

#include "binder/binder.h"
#include "common/string_util.h"
#include "exec/physical_planner.h"
#include "exec/pipeline.h"
#include "exec/program_executor.h"
#include "ivm/sql_render.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "plan/plan_printer.h"
#include "rewrite/iterative_rewrite.h"
#include "storage/codec.h"
#include "storage/csv.h"
#include "verify/verify.h"

namespace dbspinner {

namespace {

/// Shape hash of a compiled program, stored in durable checkpoints so a
/// resume against a program that compiled differently (other build, other
/// optimizer toggles) is rejected: the checkpointed step indices would be
/// meaningless in it.
uint64_t ProgramFingerprint(const Program& program) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(program.steps.size());
  for (const auto& step : program.steps) {
    mix(static_cast<uint64_t>(step.kind) + 0x9e3779b97f4a7c15ull);
    mix(static_cast<uint64_t>(step.loop_id) + 1);
  }
  return h;
}

/// Engine-side DurableCheckpointSink: turns an executor checkpoint into a
/// CheckpointImage (writing table extents) and commits it via one WAL
/// frame. The extent cache exploits the engine's copy-on-write discipline:
/// a Table reachable from consecutive checkpoints is the *same object*, so
/// its extents are written once and re-referenced. Cached entries hold a
/// TablePtr keepalive, which both keeps pointer identity from being
/// recycled and is pruned to the latest checkpoint's tables so dropped
/// versions release their memory (and their extents become GC-able).
class DurableProgramSink : public DurableCheckpointSink {
 public:
  DurableProgramSink(StorageManager* store, uint64_t tag, uint64_t fingerprint)
      : store_(store), tag_(tag), fingerprint_(fingerprint) {}

  Status Persist(
      size_t pc, const std::map<int, LoopState>& loops,
      const std::unordered_map<std::string, TablePtr>& registry) override {
    CheckpointImage image;
    image.fingerprint = fingerprint_;
    image.pc = pc;
    std::unordered_set<const Table*> live;
    for (const auto& [id, state] : loops) {
      LoopImage li;
      li.id = id;
      li.iteration = state.iteration;
      li.last_update_count = state.last_update_count;
      li.cumulative_updates = state.cumulative_updates;
      if (state.previous) {
        DBSP_ASSIGN_OR_RETURN(TableImage img, ImageFor(state.previous));
        li.previous = std::move(img);
        live.insert(state.previous.get());
      }
      if (state.delta_snapshot) {
        DBSP_ASSIGN_OR_RETURN(TableImage img, ImageFor(state.delta_snapshot));
        li.delta_snapshot = std::move(img);
        live.insert(state.delta_snapshot.get());
      }
      image.loops.push_back(std::move(li));
    }
    for (const auto& [name, table] : registry) {
      DBSP_ASSIGN_OR_RETURN(TableImage img, ImageFor(table));
      image.registry.emplace_back(name, std::move(img));
      live.insert(table.get());
    }
    DBSP_RETURN_NOT_OK(store_->SaveCheckpoint(tag_, image));
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (live.count(it->first) == 0) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
    return Status::OK();
  }

 private:
  struct Entry {
    TablePtr keepalive;
    TableImage image;
  };

  Result<TableImage> ImageFor(const TablePtr& table) {
    auto it = cache_.find(table.get());
    if (it != cache_.end()) return it->second.image;
    DBSP_ASSIGN_OR_RETURN(TableImage image, store_->WriteTableExtents(*table));
    cache_.emplace(table.get(), Entry{table, image});
    return image;
  }

  StorageManager* store_;
  uint64_t tag_;
  uint64_t fingerprint_;
  std::unordered_map<const Table*, Entry> cache_;
};

/// Rehydrates a recovered CheckpointImage into executor seed state by
/// streaming its extents back through the buffer manager.
Result<ProgramResume> MaterializeResume(StorageManager* store,
                                        const CheckpointImage& cp) {
  ProgramResume resume;
  resume.pc = static_cast<size_t>(cp.pc);
  for (const auto& li : cp.loops) {
    LoopState state;
    state.iteration = li.iteration;
    state.last_update_count = li.last_update_count;
    state.cumulative_updates = li.cumulative_updates;
    if (li.previous.has_value()) {
      DBSP_ASSIGN_OR_RETURN(state.previous, store->ReadTable(*li.previous));
    }
    if (li.delta_snapshot.has_value()) {
      DBSP_ASSIGN_OR_RETURN(state.delta_snapshot,
                            store->ReadTable(*li.delta_snapshot));
    }
    resume.loops[li.id] = std::move(state);
  }
  for (const auto& [name, img] : cp.registry) {
    DBSP_ASSIGN_OR_RETURN(TablePtr table, store->ReadTable(img));
    resume.registry[name] = std::move(table);
  }
  return resume;
}

uint64_t HashSql(const std::string& sql) {
  return BlockChecksum(sql.data(), sql.size());
}

/// Registry name a materialized view's contents (or a maintenance seed) are
/// bound under when overlaid as a CTE; the ':' keeps it out of the SQL
/// identifier space so it cannot collide with program temp names.
std::string ViewSeedName(const std::string& name) { return "__ivm:" + name; }

/// Names starting with "__ivm" are reserved for the view subsystem (the
/// __ivm_views storage table and the maintenance seed namespace).
bool IsReservedIvmName(const std::string& name) {
  return name.size() >= 5 && EqualsIgnoreCase(name.substr(0, 5), "__ivm");
}

void MergeIvmCounters(const ivm::IvmCounters& from, ExecStats* stats) {
  stats->ivm_deltas_applied += from.deltas_applied;
  stats->ivm_rows_maintained += from.rows_maintained;
  stats->ivm_full_refreshes += from.full_refreshes;
  stats->ivm_fallbacks += from.fallbacks;
}

}  // namespace

ThreadPool* Database::GetPool(SessionState& ss) {
  if (ss.options.num_workers <= 1) return nullptr;
  MutexLock lock(pool_mu_);
  if (!pool_ || pool_->num_threads() < ss.options.num_workers) {
    // Grow-only: never destroy a pool another session's query may still be
    // dispatching onto. The retired pool stays alive (idle) until the
    // Database is destroyed.
    if (pool_) retired_pools_.push_back(std::move(pool_));
    pool_ = std::make_unique<ThreadPool>(ss.options.num_workers);
  }
  return pool_.get();
}

FaultInjector* Database::GetFaultInjector(SessionState& ss) {
  if (!ss.options.fault_injection.enabled) {
    // Disabling drops the injector, so a later re-enable — even with the
    // identical config — starts a fresh schedule from hit 0. Tests rely on
    // this to reproduce a schedule by toggling the config off and on.
    ss.fault_injector.reset();
    return nullptr;
  }
  if (!ss.fault_injector ||
      ss.fault_injector->config() != ss.options.fault_injection) {
    ss.fault_injector =
        std::make_unique<FaultInjector>(ss.options.fault_injection);
  }
  return ss.fault_injector.get();
}

ExecContext Database::MakeContext(SessionState& ss, Catalog* cat,
                                  ResultRegistry* registry) {
  ExecContext ctx;
  ctx.catalog = cat;
  ctx.registry = registry;
  ctx.options = &ss.options;
  ctx.pool = GetPool(ss);
  ctx.faults = GetFaultInjector(ss);
  ctx.cancel = ss.cancel;
  // Surface verifier findings counted (not enforced) during planning in the
  // execution stats of the statement they belong to.
  ctx.stats.verify_violations = ss.pending_verify_violations;
  ss.pending_verify_violations = 0;
  // Likewise the view-maintenance work done while syncing the views this
  // statement reads (CollectViewBindings stashes it here).
  ctx.stats.ivm_deltas_applied = ss.pending_ivm.deltas_applied;
  ctx.stats.ivm_rows_maintained = ss.pending_ivm.rows_maintained;
  ctx.stats.ivm_full_refreshes = ss.pending_ivm.full_refreshes;
  ctx.stats.ivm_fallbacks = ss.pending_ivm.fallbacks;
  ss.pending_ivm = ivm::IvmCounters{};
  // Admission metadata set by the scheduler before this query started.
  ctx.stats.queue_wait_us = ss.queue_wait_us;
  ctx.stats.admission_waits = ss.queued ? 1 : 0;
  ss.queue_wait_us = 0;
  ss.queued = false;
  // Restart the schedule at hit 0 for every program execution: the fault
  // set a statement sees is a pure function of the config, independent of
  // what ran before it. Repro lines stay one statement long.
  if (ctx.faults != nullptr) ctx.faults->Reset();
  return ctx;
}

Status Database::EnsureStorageOpen() {
  MutexLock lock(storage_mu_);
  if (storage_init_done_) return storage_status_;
  storage_init_done_ = true;
  const PersistenceOptions& p = default_session_.options.persistence;
  if (!p.enabled) return Status::OK();
  if (default_session_.options.fault_injection.enabled) {
    storage_faults_ =
        std::make_unique<FaultInjector>(default_session_.options.fault_injection);
  }
  auto opened = StorageManager::Open(p, storage_faults_.get());
  if (!opened.ok()) {
    storage_status_ = opened.status();
    return storage_status_;
  }
  storage_ = std::move(opened).value();
  // Materialize every recovered table into the in-memory catalog. The
  // catalog is still empty here (first statement), so name clashes are
  // impossible.
  const std::map<std::string, TableImage> recovered = storage_->tables();
  const TableImage* views_image = nullptr;
  for (const auto& [name, image] : recovered) {
    if (name == ivm::ViewRegistry::kViewsTable) {
      // Reserved view-catalog table: re-registered into the view registry
      // below, never into the SQL catalog.
      views_image = &image;
      continue;
    }
    auto table = storage_->ReadTable(image);
    if (!table.ok()) {
      storage_status_ = table.status();
      storage_.reset();
      return storage_status_;
    }
    Status st = catalog_.CreateTable(name, std::move(table).value(),
                                     image.primary_key_col);
    if (!st.ok()) {
      storage_status_ = st;
      storage_.reset();
      return storage_status_;
    }
  }
  if (views_image != nullptr) {
    // Re-register persisted materialized views from their definition SQL.
    // No query runs here: a recovered view starts stale and fully
    // refreshes on first read or maintenance.
    auto table = storage_->ReadTable(*views_image);
    Status st = table.ok() ? Status::OK() : table.status();
    for (size_t r = 0; st.ok() && r < table.value()->num_rows(); ++r) {
      const std::string name = table.value()->GetValue(r, 0).string_value();
      const std::string defsql = table.value()->GetValue(r, 1).string_value();
      auto parsed = ParseStatement(defsql);
      if (!parsed.ok()) {
        st = Status::Corruption("persisted view '" + name +
                                "' has an unparseable definition: " +
                                parsed.status().message());
      } else if (parsed.value()->query == nullptr) {
        st = Status::Corruption("persisted view '" + name +
                                "' definition is not a query");
      } else {
        st = views_.CreateRecovered(name, std::move(parsed.value()->query),
                                    defsql);
      }
    }
    if (!st.ok()) {
      storage_status_ = st;
      storage_.reset();
      return storage_status_;
    }
  }
  return Status::OK();
}

Status Database::PersistUpsert(const std::string& name,
                               std::optional<size_t> pk,
                               const TablePtr& table) {
  if (storage_ == nullptr) return Status::OK();
  return storage_->LogUpsertTable(name, pk, *table);
}

Status Database::PersistDrop(const std::string& name) {
  if (storage_ == nullptr) return Status::OK();
  return storage_->LogDropTable(name);
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return ExecuteForSession(&default_session_, sql);
}

Result<QueryResult> Database::ExecuteScript(const std::string& sql) {
  return ExecuteScriptForSession(&default_session_, sql);
}

Result<QueryResult> Database::ExecuteForSession(SessionState* session,
                                                const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  // The statement's durable identity: re-running the same text after a
  // crash finds the durable checkpoint saved under this tag.
  session->durable_program_tag = HashSql(sql);
  return ExecuteStatement(*session, *stmt);
}

Result<QueryResult> Database::ExecuteScriptForSession(SessionState* session,
                                                      const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseScript(sql));
  if (stmts.empty()) {
    return Status::InvalidArgument("empty script");
  }
  QueryResult last;
  for (size_t i = 0; i < stmts.size(); ++i) {
    // Tag = script hash mixed with the statement's position, so identical
    // statements at different script offsets checkpoint independently.
    session->durable_program_tag =
        HashSql(sql) ^ (0x9e3779b97f4a7c15ull * (i + 1));
    DBSP_ASSIGN_OR_RETURN(last, ExecuteStatement(*session, *stmts[i]));
  }
  return last;
}

Result<TablePtr> Database::Query(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(QueryResult result, Execute(sql));
  return result.table;
}

Status Database::RegisterTable(const std::string& name, TablePtr table,
                               std::optional<size_t> primary_key_col) {
  // Serialize with write statements: an in-flight DML holds CatalogEntry
  // pointers into the pre-publish version, and publishing a new version
  // under it would let a concurrent reader's snapshot pin drop that version
  // mid-statement. The inert token makes the wait unconditional.
  DBSP_RETURN_NOT_OK(commit_lock_.Acquire(CancellationToken()));
  Status status = EnsureStorageOpen();
  if (status.ok() && IsReservedIvmName(name)) {
    status = Status::InvalidArgument(
        "table names starting with '__ivm' are reserved");
  }
  if (status.ok() && views_.Has(name)) {
    status = Status::AlreadyExists("a materialized view named '" + name +
                                   "' already exists");
  }
  if (status.ok() && storage_ != nullptr && catalog_.Exists(name)) {
    // Pre-check so the WAL never logs an upsert the in-memory publish then
    // rejects (same message the catalog would produce).
    status = Status::AlreadyExists("table '" + name + "' already exists");
  }
  if (status.ok()) status = PersistUpsert(name, primary_key_col, table);
  if (status.ok()) {
    status = catalog_.CreateTable(name, std::move(table), primary_key_col);
  }
  commit_lock_.Release();
  return status;
}

Result<Program> Database::Plan(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement(sql));
  const Statement* target = stmt.get();
  if (target->kind == StatementKind::kExplain) {
    target = target->explained.get();
  }
  if (target->kind != StatementKind::kSelect) {
    return Status::InvalidArgument("Plan() supports SELECT statements only");
  }
  Catalog snapshot = catalog_.PinSnapshot();
  ViewBindings views;
  DBSP_RETURN_NOT_OK(
      CollectViewBindings(default_session_, snapshot, *target, &views));
  return PrepareProgramWithViews(default_session_, &snapshot, views,
                                 [&](ProgramBuilder& b) {
                                   return b.BuildSelect(*target);
                                 });
}

Status Database::VerifyStage(SessionState& ss, Catalog* cat,
                             const std::string& phase, const Program& program,
                             bool require_physical) {
  if (!ss.options.verify.verify_plans) return Status::OK();
  verify::VerifyContext vctx;
  vctx.catalog = cat;
  vctx.require_physical = require_physical;
  // The pipeline checker (V2xx) re-derives broadcast-fusion and morsel
  // legality against the options this statement will execute under.
  vctx.options = &ss.options;
  verify::VerifyReport report = verify::VerifyProgram(program, vctx);
  report.phase = phase;
  return verify::EnforceOrCount(report, ss.options.verify.enforce,
                                &ss.pending_verify_violations);
}

Result<Program> Database::PrepareProgram(
    SessionState& ss, Catalog* cat,
    const std::function<Result<Program>(ProgramBuilder&)>& build) {
  ProgramBuilder builder(cat, ss.options.optimizer);
  DBSP_ASSIGN_OR_RETURN(Program program, build(builder));
  DBSP_RETURN_NOT_OK(VerifyStage(ss, cat, "after-binding", program,
                                 /*require_physical=*/false));
  Optimizer optimizer(ss.options.optimizer, cat);
  if (ss.options.verify.verify_plans) {
    optimizer.set_rule_hook([this, &ss, cat](const char* rule,
                                             const Program& p) {
      return VerifyStage(ss, cat, std::string("after-") + rule, p,
                         /*require_physical=*/false);
    });
  }
  DBSP_RETURN_NOT_OK(optimizer.OptimizeProgram(&program));
  DBSP_RETURN_NOT_OK(VerifyStage(ss, cat, "after-optimize", program,
                                 /*require_physical=*/false));
  return program;
}

Result<QueryResult> Database::ExecuteStatement(SessionState& ss,
                                               const Statement& stmt) {
  // Cancellation observed even before planning starts: a query killed
  // while queued never touches the engine.
  if (ss.cancel.live()) {
    DBSP_RETURN_NOT_OK(ss.cancel.Check());
  }
  // Session options may have been \set to nonsense since the last
  // statement; reject them here, once, before any engine state is touched.
  DBSP_RETURN_NOT_OK(ss.options.Validate());
  // Open (and recover) the durable storage layer before the first statement
  // touches the catalog. A sticky open failure (corrupt directory) fails
  // every statement rather than silently degrading to in-memory.
  DBSP_RETURN_NOT_OK(EnsureStorageOpen());
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kExplain: {
      // Reads pin the current catalog version and run entirely against it:
      // no lock held, concurrent DDL/DML is invisible until the next
      // statement.
      Catalog snapshot = catalog_.PinSnapshot();
      if (stmt.kind == StatementKind::kSelect) {
        return ExecuteSelect(ss, &snapshot, stmt);
      }
      return ExecuteExplain(ss, &snapshot, stmt);
    }
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return ExecuteTransactionControl(ss, stmt);
    default:
      break;
  }
  // Write statements occupy the engine-wide writer slot for the duration of
  // the statement, making their read-modify-write of the catalog atomic. A
  // session with an open transaction already holds the slot; everyone else
  // acquires it here with a cancellable wait, so a writer stuck behind a
  // long transaction can still be killed or timed out.
  const bool acquired_here = !ss.holds_commit_lock;
  if (acquired_here) {
    DBSP_RETURN_NOT_OK(commit_lock_.Acquire(ss.cancel));
  }
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (stmt.kind) {
      case StatementKind::kCreateTable:
        return ExecuteCreateTable(ss, stmt);
      case StatementKind::kInsert:
        return ExecuteInsert(ss, stmt);
      case StatementKind::kUpdate:
        return ExecuteUpdate(ss, stmt);
      case StatementKind::kDelete:
        return ExecuteDelete(ss, stmt);
      case StatementKind::kDropTable:
        return ExecuteDrop(ss, stmt);
      case StatementKind::kCopy:
        return ExecuteCopy(ss, stmt);
      case StatementKind::kCreateView:
        return ExecuteCreateView(ss, stmt);
      case StatementKind::kDropView:
        return ExecuteDropView(ss, stmt);
      case StatementKind::kRefreshView:
        return ExecuteRefreshView(ss, stmt);
      default:
        break;
    }
    return Status::Internal("unhandled statement kind");
  }();
  if (acquired_here) commit_lock_.Release();
  // Post-commit view maintenance runs outside the writer slot: every
  // queued delta carries its own pinned snapshot, so folding needs no
  // engine lock. Inside an explicit transaction deltas stay queued until
  // COMMIT drains them (or ROLLBACK invalidates them).
  if (result.ok() && !ss.InTransaction()) {
    MaintainViews(ss, &result->stats);
  }
  return result;
}

Result<QueryResult> Database::ExecuteCopy(SessionState& ss,
                                          const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  QueryResult result;
  result.table = Table::Make(Schema());
  if (stmt.copy_to) {
    DBSP_RETURN_NOT_OK(
        WriteCsv(*entry->table, stmt.copy_path, stmt.copy_delimiter));
    result.rows_affected = static_cast<int64_t>(entry->table->num_rows());
    return result;
  }
  DBSP_ASSIGN_OR_RETURN(
      TablePtr imported,
      ReadCsv(entry->table->schema(), stmt.copy_path, stmt.copy_delimiter));
  // Append to a COW clone, like INSERT.
  TablePtr updated = entry->table->Clone();
  updated->AppendAll(*imported);
  DBSP_RETURN_NOT_OK(
      PersistUpsert(stmt.table_name, entry->primary_key_col, updated));
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  if (views_.DependsOn(stmt.table_name)) {
    CaptureDelta(ss, stmt.table_name, imported, nullptr);
  }
  result.rows_affected = static_cast<int64_t>(imported->num_rows());
  return result;
}

Result<QueryResult> Database::ExecuteTransactionControl(SessionState& ss,
                                                        const Statement& stmt) {
  QueryResult result;
  result.table = Table::Make(Schema());
  switch (stmt.kind) {
    case StatementKind::kBegin:
      if (ss.InTransaction()) {
        return Status::InvalidArgument("a transaction is already in progress");
      }
      // The transaction holds the writer slot until COMMIT/ROLLBACK, so its
      // snapshot cannot go stale under it and its rollback target is exact.
      DBSP_RETURN_NOT_OK(commit_lock_.Acquire(ss.cancel));
      ss.holds_commit_lock = true;
      ss.tx_snapshot = catalog_.Snapshot();
      return result;
    case StatementKind::kCommit: {
      if (!ss.InTransaction()) {
        return Status::InvalidArgument("no transaction in progress");
      }
      // Fold the transaction's WAL frames into one manifest swap, making
      // the whole transaction durable as a unit. The lock is released
      // either way — a fold failure must not strand the writer slot.
      Status durable = Status::OK();
      if (storage_ != nullptr) durable = storage_->WriteManifestNow();
      ss.tx_snapshot.reset();
      ss.holds_commit_lock = false;
      commit_lock_.Release();
      DBSP_RETURN_NOT_OK(durable);
      // Deltas the transaction's statements queued are safe to fold now
      // that the writer slot is free.
      MaintainViews(ss, &result.stats);
      return result;
    }
    case StatementKind::kRollback: {
      if (!ss.InTransaction()) {
        return Status::InvalidArgument("no transaction in progress");
      }
      // Durably undo what the transaction logged: drop tables it created,
      // re-log the snapshot version of tables it replaced. Runs before the
      // in-memory restore so the WAL order matches the publish order.
      Status durable = Status::OK();
      if (storage_ != nullptr) {
        auto current = catalog_.Snapshot();
        for (const auto& [name, entry] : current) {
          if (ss.tx_snapshot->find(name) == ss.tx_snapshot->end()) {
            if (durable.ok()) durable = PersistDrop(name);
          }
        }
        for (const auto& [name, entry] : *ss.tx_snapshot) {
          auto it = current.find(name);
          if (it == current.end() || it->second.table != entry.table) {
            if (durable.ok()) {
              durable =
                  PersistUpsert(name, entry.primary_key_col, entry.table);
            }
          }
        }
      }
      catalog_.Restore(std::move(*ss.tx_snapshot));
      if (!views_.empty()) {
        // The restore rewrote base tables underneath any queued deltas;
        // invalidate so every view recomputes from the restored catalog.
        views_.MarkAllStale(catalog_.version(), catalog_.PinSnapshot());
      }
      ss.tx_snapshot.reset();
      ss.holds_commit_lock = false;
      commit_lock_.Release();
      DBSP_RETURN_NOT_OK(durable);
      return result;
    }
    default:
      return Status::Internal("not a transaction-control statement");
  }
}

Result<QueryResult> Database::RunProgramToResult(SessionState& ss, Catalog* cat,
                                                 Program program,
                                                 const ViewBindings& seeds) {
  DBSP_RETURN_NOT_OK(PlanProgram(&program, cat));
  DBSP_RETURN_NOT_OK(VerifyStage(ss, cat, "after-compile", program,
                                 /*require_physical=*/true));
  ResultRegistry registry;
  registry.set_scope(ss.temp_scope);
  // Pre-bind the overlaid view (or maintenance-seed) contents under the
  // names the binder's CTE overlays resolve to.
  for (const auto& [name, table] : seeds) {
    registry.Put(ViewSeedName(name), table);
  }
  ExecContext ctx = MakeContext(ss, cat, &registry);

  // Durable executor checkpoints (DESIGN.md §12): when persistence and
  // recovery are both on, each in-memory checkpoint is also committed to
  // the storage layer, and a prior run's durable checkpoint — same
  // statement tag, same program shape, same registry scope — seeds a
  // resume instead of restarting the program from scratch.
  std::unique_ptr<DurableProgramSink> sink;
  ProgramResume resume;
  const ProgramResume* resume_ptr = nullptr;
  const uint64_t tag = ss.durable_program_tag;
  if (storage_ != nullptr && storage_->options().durable_checkpoints &&
      ss.options.fault_tolerance.enable_recovery && tag != 0) {
    uint64_t fp = ProgramFingerprint(program) ^
                  BlockChecksum(ss.temp_scope.data(), ss.temp_scope.size());
    if (auto cp = storage_->FindCheckpoint(tag);
        cp.has_value() && cp->fingerprint == fp) {
      DBSP_ASSIGN_OR_RETURN(resume, MaterializeResume(storage_.get(), *cp));
      resume_ptr = &resume;
    }
    sink = std::make_unique<DurableProgramSink>(storage_.get(), tag, fp);
    ctx.durable = sink.get();
  }

  DBSP_ASSIGN_OR_RETURN(TablePtr table, RunProgram(program, &ctx, resume_ptr));
  if (sink != nullptr) {
    // The program finished; its checkpoint is obsolete. (On failure we keep
    // it: the re-issued statement resumes.)
    DBSP_RETURN_NOT_OK(storage_->ClearCheckpoint(tag));
  }
  QueryResult result;
  result.table = std::move(table);
  result.stats = ctx.stats;
  return result;
}

Result<QueryResult> Database::ExecuteSelect(SessionState& ss, Catalog* cat,
                                            const Statement& stmt) {
  ViewBindings views;
  DBSP_RETURN_NOT_OK(CollectViewBindings(ss, *cat, stmt, &views));
  DBSP_ASSIGN_OR_RETURN(
      Program program,
      PrepareProgramWithViews(ss, cat, views, [&](ProgramBuilder& builder) {
        return builder.BuildSelect(stmt);
      }));
  return RunProgramToResult(ss, cat, std::move(program), views);
}

Result<QueryResult> Database::ExecuteExplain(SessionState& ss, Catalog* cat,
                                             const Statement& stmt) {
  const Statement& inner = *stmt.explained;
  if (inner.kind != StatementKind::kSelect) {
    return Status::NotImplemented("EXPLAIN supports SELECT statements only");
  }
  ViewBindings views;
  DBSP_RETURN_NOT_OK(CollectViewBindings(ss, *cat, inner, &views));
  DBSP_ASSIGN_OR_RETURN(
      Program program,
      PrepareProgramWithViews(ss, cat, views, [&](ProgramBuilder& builder) {
        return builder.BuildSelect(inner);
      }));
  QueryResult result;
  if (stmt.explain_analyze) {
    // EXPLAIN ANALYZE: actually run the program with per-step profiling
    // and annotate each step with executions / time / rows.
    DBSP_RETURN_NOT_OK(PlanProgram(&program, cat));
    DBSP_RETURN_NOT_OK(VerifyStage(ss, cat, "after-compile", program,
                                   /*require_physical=*/true));
    ResultRegistry registry;
    registry.set_scope(ss.temp_scope);
    for (const auto& [name, table] : views) {
      registry.Put(ViewSeedName(name), table);
    }
    ExecContext ctx = MakeContext(ss, cat, &registry);
    ctx.profiling = true;
    DBSP_ASSIGN_OR_RETURN(TablePtr ignored, RunProgram(program, &ctx));
    (void)ignored;
    result.explain =
        ExplainProgramWithProfile(program, ctx.profile, /*verbose=*/false);
    // Execution counters (including the fault-tolerance ones:
    // checkpoints_taken / restores / step_retries, and the concurrent-
    // serving ones: queue_wait_us / admission_waits / cancel_checks)
    // render below the plan.
    result.explain += "\nStats: " + ctx.stats.ToString();
    result.stats = ctx.stats;
  } else {
    result.explain = ExplainProgram(program, /*verbose=*/true);
  }
  if (stmt.explain_cost) {
    CostModel model(cat);
    result.explain += "\n" + model.ExplainCost(program);
  }
  if (stmt.explain_verify) {
    // EXPLAIN (VERIFY): render the verifier's report for the fully
    // optimized (and, under ANALYZE, compiled) program, regardless of the
    // verify_plans option.
    verify::VerifyContext vctx;
    vctx.catalog = cat;
    vctx.require_physical = stmt.explain_analyze;
    vctx.options = &ss.options;
    verify::VerifyReport report = verify::VerifyProgram(program, vctx);
    report.phase = "final program";
    result.explain += "\n" + report.ToString();
    if (!stmt.explain_analyze) {
      // Plain EXPLAIN never executes, so the steps carry no physical plans
      // yet. Compile them here purely for verification, so the
      // post-physical-compilation stage (the V2xx pipeline checker) renders
      // alongside the bind/optimize-stage report above — EXPLAIN (VERIFY)
      // covers all three IRs without running the query. Under ANALYZE the
      // program was compiled before this block, so the report above already
      // includes the physical analysis.
      DBSP_RETURN_NOT_OK(PlanProgram(&program, cat));
      vctx.require_physical = true;
      verify::VerifyReport compiled = verify::VerifyProgram(program, vctx);
      compiled.phase = "after-compile";
      result.explain += compiled.ToString();
    }
  }
  // EXPLAIN also returns its text as a one-column table for convenience.
  Schema schema;
  schema.AddColumn("plan", TypeId::kString);
  result.table = Table::Make(schema);
  result.table->AppendRow({Value::String(result.explain)});
  return result;
}

Result<QueryResult> Database::ExecuteCreateTable(SessionState& ss,
                                                 const Statement& stmt) {
  if (stmt.if_not_exists &&
      (catalog_.Exists(stmt.table_name) || views_.Has(stmt.table_name))) {
    return QueryResult{};
  }
  if (IsReservedIvmName(stmt.table_name)) {
    return Status::InvalidArgument(
        "table names starting with '__ivm' are reserved");
  }
  if (views_.Has(stmt.table_name)) {
    return Status::AlreadyExists("a materialized view named '" +
                                 stmt.table_name + "' already exists");
  }
  if (stmt.ctas_query) {
    // CREATE TABLE ... AS SELECT: the query's result seeds the table. Runs
    // against the live catalog — the writer slot we hold excludes any
    // concurrent republish.
    Catalog snapshot = catalog_.PinSnapshot();
    ViewBindings views;
    DBSP_RETURN_NOT_OK(CollectViewBindings(ss, snapshot, stmt, &views));
    DBSP_ASSIGN_OR_RETURN(
        Program program,
        PrepareProgramWithViews(ss, &catalog_, views,
                                [&](ProgramBuilder& builder) {
                                  return builder.BuildQuery(stmt.ctes,
                                                            *stmt.ctas_query);
                                }));
    DBSP_ASSIGN_OR_RETURN(
        QueryResult rows,
        RunProgramToResult(ss, &catalog_, std::move(program), views));
    TablePtr created = rows.table->Clone();
    if (storage_ != nullptr && catalog_.Exists(stmt.table_name)) {
      return Status::AlreadyExists("table '" + stmt.table_name +
                                   "' already exists");
    }
    DBSP_RETURN_NOT_OK(PersistUpsert(stmt.table_name, std::nullopt, created));
    DBSP_RETURN_NOT_OK(catalog_.CreateTable(stmt.table_name, created));
    QueryResult result;
    result.table = Table::Make(Schema());
    result.rows_affected = static_cast<int64_t>(rows.table->num_rows());
    result.stats = rows.stats;
    return result;
  }
  Schema schema;
  std::optional<size_t> pk;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    schema.AddColumn(stmt.columns[i].name, stmt.columns[i].type);
    if (stmt.columns[i].primary_key) {
      if (pk.has_value()) {
        return Status::InvalidArgument(
            "multiple PRIMARY KEY columns are not supported");
      }
      pk = i;
    }
  }
  if (storage_ != nullptr && catalog_.Exists(stmt.table_name)) {
    return Status::AlreadyExists("table '" + stmt.table_name +
                                 "' already exists");
  }
  TablePtr empty = Table::Make(schema);
  DBSP_RETURN_NOT_OK(PersistUpsert(stmt.table_name, pk, empty));
  DBSP_RETURN_NOT_OK(catalog_.CreateTable(stmt.table_name, empty, pk));
  QueryResult result;
  result.table = Table::Make(Schema());
  return result;
}

Result<QueryResult> Database::ExecuteInsert(SessionState& ss,
                                            const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  const Schema& schema = entry->table->schema();

  // Map target columns: explicit list or all columns positionally.
  std::vector<size_t> targets;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) targets.push_back(i);
  } else {
    for (const auto& name : stmt.insert_columns) {
      auto idx = schema.FindColumn(name);
      if (!idx.has_value()) {
        return Status::BindError("column '" + name +
                                 "' does not exist in table '" +
                                 stmt.table_name + "'");
      }
      targets.push_back(*idx);
    }
  }

  // Copy-on-write so previously returned results that alias this table's
  // storage stay stable.
  TablePtr updated = entry->table->Clone();
  int64_t inserted = 0;

  if (!stmt.insert_values.empty()) {
    Binder binder(&catalog_);
    Binder::BindContext empty_ctx;
    static const TablePtr kOneRow = [] {
      auto t = Table::Make(Schema());
      return t;
    }();
    for (const auto& value_row : stmt.insert_values) {
      if (value_row.size() != targets.size()) {
        return Status::BindError("INSERT row has " +
                                 std::to_string(value_row.size()) +
                                 " values, expected " +
                                 std::to_string(targets.size()));
      }
      std::vector<Value> row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < value_row.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                              binder.BindScalarExpr(*value_row[i], empty_ctx));
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bound, *kOneRow, 0));
        DBSP_ASSIGN_OR_RETURN(row[targets[i]],
                              v.CastTo(schema.column(targets[i]).type));
      }
      updated->AppendRow(row);
      ++inserted;
    }
  } else if (stmt.insert_query) {
    Catalog snapshot = catalog_.PinSnapshot();
    ViewBindings views;
    DBSP_RETURN_NOT_OK(CollectViewBindings(ss, snapshot, stmt, &views));
    DBSP_ASSIGN_OR_RETURN(
        Program program,
        PrepareProgramWithViews(ss, &catalog_, views,
                                [&](ProgramBuilder& builder) {
                                  return builder.BuildQuery(
                                      stmt.ctes, *stmt.insert_query);
                                }));
    DBSP_ASSIGN_OR_RETURN(
        QueryResult rows,
        RunProgramToResult(ss, &catalog_, std::move(program), views));
    if (rows.table->num_columns() != targets.size()) {
      return Status::BindError(
          "INSERT source returns " +
          std::to_string(rows.table->num_columns()) + " columns, expected " +
          std::to_string(targets.size()));
    }
    for (size_t r = 0; r < rows.table->num_rows(); ++r) {
      std::vector<Value> row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < targets.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(
            row[targets[i]],
            rows.table->GetValue(r, i).CastTo(
                schema.column(targets[i]).type));
      }
      updated->AppendRow(row);
      ++inserted;
    }
  }

  DBSP_RETURN_NOT_OK(
      PersistUpsert(stmt.table_name, entry->primary_key_col, updated));
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  if (inserted > 0 && views_.DependsOn(stmt.table_name)) {
    // The appended suffix of the COW clone is exactly the inserted set.
    const size_t old_n = updated->num_rows() - static_cast<size_t>(inserted);
    auto ins = Table::Make(schema);
    ins->Reserve(static_cast<size_t>(inserted));
    for (size_t r = old_n; r < updated->num_rows(); ++r) {
      ins->AppendRowFrom(*updated, r);
    }
    CaptureDelta(ss, stmt.table_name, std::move(ins), nullptr);
  }
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = inserted;
  return result;
}

Result<QueryResult> Database::ExecuteUpdate(SessionState& ss,
                                            const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  TablePtr target = entry->table;
  const Schema& schema = target->schema();
  size_t ncols = schema.num_columns();

  Binder binder(&catalog_);

  // Resolve SET target columns.
  std::vector<size_t> set_cols;
  for (const auto& [name, expr] : stmt.set_clauses) {
    auto idx = schema.FindColumn(name);
    if (!idx.has_value()) {
      return Status::BindError("column '" + name +
                               "' does not exist in table '" +
                               stmt.table_name + "'");
    }
    set_cols.push_back(*idx);
    (void)expr;
  }

  if (!stmt.update_from) {
    // Simple UPDATE: evaluate WHERE and SET over the table itself.
    Binder::BindContext ctx;
    ctx.schema = schema;
    ctx.entries = {Binder::ScopeEntry{"", stmt.table_name, 0, ncols}};
    BoundExprPtr where;
    if (stmt.where) {
      DBSP_ASSIGN_OR_RETURN(where, binder.BindScalarExpr(*stmt.where, ctx));
    }
    std::vector<BoundExprPtr> set_exprs;
    for (const auto& [name, expr] : stmt.set_clauses) {
      DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                            binder.BindScalarExpr(*expr, ctx));
      set_exprs.push_back(std::move(bound));
    }
    auto updated = Table::Make(schema);
    updated->Reserve(target->num_rows());
    // An UPDATE is a (delete old row, insert new row) pair per hit for view
    // maintenance; only built when a view depends on this table.
    const bool track = views_.DependsOn(stmt.table_name);
    TablePtr delta_old, delta_new;
    if (track) {
      delta_old = Table::Make(schema);
      delta_new = Table::Make(schema);
    }
    int64_t affected = 0;
    for (size_t r = 0; r < target->num_rows(); ++r) {
      bool hit = true;
      if (where) {
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*where, *target, r));
        hit = !v.is_null() && v.bool_value();
      }
      if (!hit) {
        updated->AppendRowFrom(*target, r);
        continue;
      }
      std::vector<Value> row = target->GetRow(r);
      for (size_t i = 0; i < set_cols.size(); ++i) {
        DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*set_exprs[i], *target, r));
        DBSP_ASSIGN_OR_RETURN(row[set_cols[i]],
                              v.CastTo(schema.column(set_cols[i]).type));
      }
      if (track) {
        delta_old->AppendRowFrom(*target, r);
        delta_new->AppendRow(row);
      }
      updated->AppendRow(row);
      ++affected;
    }
    DBSP_RETURN_NOT_OK(
        PersistUpsert(stmt.table_name, entry->primary_key_col, updated));
    DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
    if (track && affected > 0) {
      CaptureDelta(ss, stmt.table_name, std::move(delta_new),
                   std::move(delta_old));
    }
    QueryResult result;
    result.table = Table::Make(Schema());
    result.rows_affected = affected;
    return result;
  }

  // UPDATE ... FROM: join the target (extended with a row id) against the
  // FROM relation on the WHERE condition, then apply SET per matched row.
  Schema ext_schema = schema;
  ext_schema.AddColumn("__rowid", TypeId::kInt64);
  std::vector<ColumnVectorPtr> ext_cols;
  for (size_t c = 0; c < ncols; ++c) ext_cols.push_back(target->column_ptr(c));
  auto rowid = std::make_shared<ColumnVector>(TypeId::kInt64);
  rowid->Reserve(target->num_rows());
  for (size_t r = 0; r < target->num_rows(); ++r) {
    rowid->AppendInt64(static_cast<int64_t>(r));
  }
  ext_cols.push_back(rowid);
  TablePtr ext = Table::FromColumns(ext_schema, std::move(ext_cols));

  Binder::BindContext from_ctx;
  DBSP_ASSIGN_OR_RETURN(LogicalOpPtr from_plan,
                        binder.BindTableRef(*stmt.update_from, &from_ctx));

  // Combined context: target columns first (scoped by table name), then the
  // FROM scopes shifted past the row id column.
  Binder::BindContext ctx;
  ctx.schema = ext_schema;
  for (const auto& col : from_ctx.schema.columns()) {
    ctx.schema.AddColumn(col.name, col.type);
  }
  ctx.entries = {Binder::ScopeEntry{"", stmt.table_name, 0, ncols}};
  for (Binder::ScopeEntry e : from_ctx.entries) {
    e.start += ext_schema.num_columns();
    ctx.entries.push_back(e);
  }

  auto join = std::make_unique<LogicalOp>();
  join->kind = LogicalOpKind::kJoin;
  join->join_type = JoinType::kInner;
  join->output_schema = ctx.schema;
  join->children.push_back(
      MakeScan(ScanSource::kResult, "__update_target", ext_schema));
  join->children.push_back(std::move(from_plan));
  LogicalOpPtr plan = std::move(join);
  if (stmt.where) {
    DBSP_ASSIGN_OR_RETURN(BoundExprPtr where,
                          binder.BindScalarExpr(*stmt.where, ctx));
    plan = MakeFilter(std::move(where), std::move(plan));
  }
  std::vector<BoundExprPtr> set_exprs;
  for (const auto& [name, expr] : stmt.set_clauses) {
    DBSP_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          binder.BindScalarExpr(*expr, ctx));
    set_exprs.push_back(std::move(bound));
  }

  Optimizer optimizer(ss.options.optimizer, &catalog_);
  DBSP_RETURN_NOT_OK(optimizer.OptimizePlan(&plan));
  if (ss.options.verify.verify_plans) {
    // Standalone-plan path (no Program): run just the plan checker.
    verify::VerifyContext vctx;
    vctx.catalog = &catalog_;
    verify::VerifyReport report = verify::VerifyPlan(*plan, vctx);
    report.phase = "update-from";
    DBSP_RETURN_NOT_OK(verify::EnforceOrCount(
        report, ss.options.verify.enforce, &ss.pending_verify_violations));
  }
  CostModel cost(&catalog_);
  DBSP_ASSIGN_OR_RETURN(PhysicalOpPtr physical,
                        CreatePhysicalPlan(*plan, &cost));

  ResultRegistry registry;
  registry.set_scope(ss.temp_scope);
  registry.Put("__update_target", ext);
  ExecContext exec_ctx = MakeContext(ss, &catalog_, &registry);
  DBSP_ASSIGN_OR_RETURN(TablePtr joined, ExecuteOp(*physical, exec_ctx));

  // Apply the first match per row id.
  size_t rowid_col = ncols;  // __rowid ordinal in the joined output
  std::vector<int64_t> match_of(target->num_rows(), -1);
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    int64_t id = joined->GetValue(r, rowid_col).int64_value();
    if (match_of[static_cast<size_t>(id)] < 0) {
      match_of[static_cast<size_t>(id)] = static_cast<int64_t>(r);
    }
  }
  auto updated = Table::Make(schema);
  updated->Reserve(target->num_rows());
  const bool track = views_.DependsOn(stmt.table_name);
  TablePtr delta_old, delta_new;
  if (track) {
    delta_old = Table::Make(schema);
    delta_new = Table::Make(schema);
  }
  int64_t affected = 0;
  for (size_t r = 0; r < target->num_rows(); ++r) {
    int64_t m = match_of[r];
    if (m < 0) {
      updated->AppendRowFrom(*target, r);
      continue;
    }
    std::vector<Value> row = target->GetRow(r);
    for (size_t i = 0; i < set_cols.size(); ++i) {
      DBSP_ASSIGN_OR_RETURN(
          Value v, EvaluateExpr(*set_exprs[i], *joined,
                                static_cast<size_t>(m)));
      DBSP_ASSIGN_OR_RETURN(row[set_cols[i]],
                            v.CastTo(schema.column(set_cols[i]).type));
    }
    if (track) {
      delta_old->AppendRowFrom(*target, r);
      delta_new->AppendRow(row);
    }
    updated->AppendRow(row);
    ++affected;
  }
  DBSP_RETURN_NOT_OK(
      PersistUpsert(stmt.table_name, entry->primary_key_col, updated));
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, updated));
  if (track && affected > 0) {
    CaptureDelta(ss, stmt.table_name, std::move(delta_new),
                 std::move(delta_old));
  }
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = affected;
  result.stats = exec_ctx.stats;
  return result;
}

Result<QueryResult> Database::ExecuteDelete(SessionState& ss,
                                            const Statement& stmt) {
  DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Get(stmt.table_name));
  TablePtr target = entry->table;
  const Schema& schema = target->schema();

  BoundExprPtr where;
  if (stmt.where) {
    Binder binder(&catalog_);
    Binder::BindContext ctx;
    ctx.schema = schema;
    ctx.entries = {
        Binder::ScopeEntry{"", stmt.table_name, 0, schema.num_columns()}};
    DBSP_ASSIGN_OR_RETURN(where, binder.BindScalarExpr(*stmt.where, ctx));
  }

  const bool track = views_.DependsOn(stmt.table_name);
  TablePtr removed;
  if (track) removed = Table::Make(schema);
  std::vector<uint32_t> keep;
  int64_t deleted = 0;
  for (size_t r = 0; r < target->num_rows(); ++r) {
    bool hit = true;
    if (where) {
      DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*where, *target, r));
      hit = !v.is_null() && v.bool_value();
    }
    if (hit) {
      if (track) removed->AppendRowFrom(*target, r);
      ++deleted;
    } else {
      keep.push_back(static_cast<uint32_t>(r));
    }
  }
  TablePtr remaining = target->Gather(keep);
  DBSP_RETURN_NOT_OK(
      PersistUpsert(stmt.table_name, entry->primary_key_col, remaining));
  DBSP_RETURN_NOT_OK(catalog_.ReplaceContents(stmt.table_name, remaining));
  if (track && deleted > 0) {
    CaptureDelta(ss, stmt.table_name, nullptr, std::move(removed));
  }
  QueryResult result;
  result.table = Table::Make(Schema());
  result.rows_affected = deleted;
  return result;
}

Result<QueryResult> Database::ExecuteDrop(SessionState& ss,
                                          const Statement& stmt) {
  (void)ss;
  if (views_.Has(stmt.table_name)) {
    return Status::InvalidArgument("'" + stmt.table_name +
                                   "' is a materialized view; use DROP "
                                   "MATERIALIZED VIEW");
  }
  if (views_.DependsOn(stmt.table_name)) {
    return Status::InvalidArgument("cannot drop table '" + stmt.table_name +
                                   "': a materialized view depends on it");
  }
  if (storage_ != nullptr && catalog_.Exists(stmt.table_name)) {
    DBSP_RETURN_NOT_OK(PersistDrop(stmt.table_name));
  }
  DBSP_RETURN_NOT_OK(catalog_.DropTable(stmt.table_name, stmt.if_exists));
  QueryResult result;
  result.table = Table::Make(Schema());
  return result;
}

// --- incremental view maintenance (src/ivm/, DESIGN.md §14) ---------------

Result<QueryResult> Database::ExecuteCreateView(SessionState& ss,
                                                const Statement& stmt) {
  if (ss.InTransaction()) {
    return Status::InvalidArgument(
        "materialized view statements are not allowed inside a transaction");
  }
  const std::string& name = stmt.table_name;
  if (IsReservedIvmName(name)) {
    return Status::InvalidArgument(
        "view names starting with '__ivm' are reserved");
  }
  if (stmt.if_not_exists && views_.Has(name)) {
    QueryResult result;
    result.table = Table::Make(Schema());
    return result;
  }
  if (catalog_.Exists(name)) {
    return Status::AlreadyExists("a table named '" + name +
                                 "' already exists");
  }
  Catalog snapshot = catalog_.PinSnapshot();
  ivm::IvmCounters local;
  DBSP_ASSIGN_OR_RETURN(
      TablePtr contents,
      views_.Create(name, *stmt.ctas_query,
                    ivm::RenderQueryNode(*stmt.ctas_query), snapshot,
                    MakeViewRunner(ss), &local));
  (void)contents;
  Status persisted = PersistViewCatalog();
  if (!persisted.ok()) {
    // Durable registration failed; back out the in-memory view so the two
    // catalogs agree.
    (void)views_.Drop(name, /*if_exists=*/true);
    return persisted;
  }
  QueryResult result;
  result.table = Table::Make(Schema());
  MergeIvmCounters(local, &result.stats);
  return result;
}

Result<QueryResult> Database::ExecuteDropView(SessionState& ss,
                                              const Statement& stmt) {
  if (ss.InTransaction()) {
    return Status::InvalidArgument(
        "materialized view statements are not allowed inside a transaction");
  }
  DBSP_RETURN_NOT_OK(views_.Drop(stmt.table_name, stmt.if_exists));
  DBSP_RETURN_NOT_OK(PersistViewCatalog());
  QueryResult result;
  result.table = Table::Make(Schema());
  return result;
}

Result<QueryResult> Database::ExecuteRefreshView(SessionState& ss,
                                                 const Statement& stmt) {
  if (ss.InTransaction()) {
    return Status::InvalidArgument(
        "materialized view statements are not allowed inside a transaction");
  }
  Catalog snapshot = catalog_.PinSnapshot();
  ivm::IvmCounters local;
  DBSP_RETURN_NOT_OK(views_.Refresh(stmt.table_name, snapshot,
                                    MakeViewRunner(ss), &local));
  QueryResult result;
  result.table = Table::Make(Schema());
  MergeIvmCounters(local, &result.stats);
  return result;
}

ivm::QueryRunner Database::MakeViewRunner(SessionState& ss) {
  return [this, &ss](const QueryNode& query, const Catalog& snapshot,
                     const std::vector<std::pair<std::string, TablePtr>>&
                         seeds) -> Result<TablePtr> {
    // Maintenance work is re-derivable from the pending queue: never
    // durable-checkpoint it under the triggering statement's tag.
    const uint64_t saved_tag = ss.durable_program_tag;
    ss.durable_program_tag = 0;
    Catalog snap = snapshot;  // snapshot handles share the store; cheap copy
    auto run = [&]() -> Result<TablePtr> {
      DBSP_ASSIGN_OR_RETURN(
          Program program,
          PrepareProgramWithViews(ss, &snap, seeds, [&](ProgramBuilder& b) {
            return b.BuildQuery({}, query);
          }));
      DBSP_ASSIGN_OR_RETURN(
          QueryResult result,
          RunProgramToResult(ss, &snap, std::move(program), seeds));
      return result.table;
    };
    Result<TablePtr> table = run();
    ss.durable_program_tag = saved_tag;
    return table;
  };
}

Result<Program> Database::PrepareProgramWithViews(
    SessionState& ss, Catalog* cat, const ViewBindings& views,
    const std::function<Result<Program>(ProgramBuilder&)>& build) {
  return PrepareProgram(ss, cat, [&](ProgramBuilder& b) -> Result<Program> {
    for (const auto& [name, contents] : views) {
      b.binder().AddCte(name, CteBinding{ViewSeedName(name),
                                         contents->schema()});
    }
    DBSP_ASSIGN_OR_RETURN(Program program, build(b));
    // Record the externally bound results so the dataflow verifier treats
    // them as live at entry (RunProgramToResult seeds them).
    for (const auto& [name, contents] : views) {
      program.seeded_results.emplace_back(ViewSeedName(name),
                                          contents->schema());
    }
    return program;
  });
}

Status Database::CollectViewBindings(SessionState& ss, const Catalog& snapshot,
                                     const Statement& stmt,
                                     ViewBindings* out) {
  if (views_.empty()) return Status::OK();
  std::vector<const QueryNode*> roots;
  if (stmt.query) roots.push_back(stmt.query.get());
  if (stmt.ctas_query) roots.push_back(stmt.ctas_query.get());
  if (stmt.insert_query) roots.push_back(stmt.insert_query.get());
  for (const CteDef& def : stmt.ctes) {
    if (def.query) roots.push_back(def.query.get());
    if (def.init_query) roots.push_back(def.init_query.get());
    if (def.iter_query) roots.push_back(def.iter_query.get());
  }
  if (roots.empty()) return Status::OK();
  ivm::IvmCounters local;
  ivm::QueryRunner runner = MakeViewRunner(ss);
  Status status = Status::OK();
  for (const std::string& name : views_.Names()) {
    // A statement CTE of the same name shadows the view, per SQL scoping.
    bool shadowed = false;
    for (const CteDef& def : stmt.ctes) {
      if (EqualsIgnoreCase(def.name, name)) {
        shadowed = true;
        break;
      }
    }
    if (shadowed) continue;
    bool referenced = false;
    for (const QueryNode* q : roots) {
      if (QueryReferences(*q, name)) {
        referenced = true;
        break;
      }
    }
    if (!referenced) continue;
    auto contents = views_.ContentsAt(name, snapshot.version(), snapshot,
                                      runner, &local);
    if (!contents.ok()) {
      status = contents.status();
      break;
    }
    out->emplace_back(name, std::move(contents).value());
  }
  // Stash the sync work either way; MakeContext folds it into the
  // statement's ExecStats.
  ss.pending_ivm.deltas_applied += local.deltas_applied;
  ss.pending_ivm.rows_maintained += local.rows_maintained;
  ss.pending_ivm.full_refreshes += local.full_refreshes;
  ss.pending_ivm.fallbacks += local.fallbacks;
  return status;
}

void Database::MaintainViews(SessionState& ss, ExecStats* stats) {
  if (!views_.HasPending()) return;
  ivm::IvmCounters local;
  ivm::QueryRunner runner = MakeViewRunner(ss);
  auto drain = [&]() -> Status {
    views_.DrainPending(runner, &local);
    return Status::OK();
  };
  MaintenanceGate gate;
  {
    MutexLock lock(gate_mu_);
    gate = maintenance_gate_;
  }
  // A gate failure (admission queue full, cancellation) leaves the queues
  // intact; the lazy sync in CollectViewBindings keeps answers right.
  Status st = gate ? gate(ss.cancel, drain) : drain();
  (void)st;
  if (stats != nullptr) MergeIvmCounters(local, stats);
}

void Database::CaptureDelta(SessionState& ss, const std::string& table,
                            TablePtr inserts, TablePtr deletes) {
  const size_t delta_rows = (inserts ? inserts->num_rows() : 0) +
                            (deletes ? deletes->num_rows() : 0);
  if (delta_rows == 0) return;
  const bool force_full =
      !ss.options.ivm_enabled ||
      delta_rows > static_cast<size_t>(ss.options.ivm_max_delta_rows);
  views_.OnBaseDelta(table, inserts, deletes, catalog_.version(),
                     catalog_.PinSnapshot(), force_full);
}

Status Database::PersistViewCatalog() {
  if (storage_ == nullptr) return Status::OK();
  Schema schema;
  schema.AddColumn("name", TypeId::kString);
  schema.AddColumn("defsql", TypeId::kString);
  auto table = Table::Make(schema);
  for (const auto& info : views_.List()) {
    table->AppendRow(
        {Value::String(info.name), Value::String(info.definition)});
  }
  // Always upsert (even when empty): DROP of the last view must overwrite
  // the previous image, or recovery would resurrect it.
  return PersistUpsert(ivm::ViewRegistry::kViewsTable, std::nullopt, table);
}

}  // namespace dbspinner
