# Empty compiler generated dependencies file for dbspinner.
# This may be replaced when dependencies are built.
