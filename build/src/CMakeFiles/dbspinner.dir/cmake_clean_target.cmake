file(REMOVE_RECURSE
  "libdbspinner.a"
)
