
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binder/binder.cc" "src/CMakeFiles/dbspinner.dir/binder/binder.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/binder/binder.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dbspinner.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dbspinner.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/dbspinner.dir/common/types.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/common/types.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/dbspinner.dir/common/value.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/common/value.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/dbspinner.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/options.cc" "src/CMakeFiles/dbspinner.dir/engine/options.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/engine/options.cc.o.d"
  "/root/repo/src/engine/procedure.cc" "src/CMakeFiles/dbspinner.dir/engine/procedure.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/engine/procedure.cc.o.d"
  "/root/repo/src/engine/workloads.cc" "src/CMakeFiles/dbspinner.dir/engine/workloads.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/engine/workloads.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/dbspinner.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/dbspinner.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/dbspinner.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/merge_update.cc" "src/CMakeFiles/dbspinner.dir/exec/merge_update.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/merge_update.cc.o.d"
  "/root/repo/src/exec/physical_plan.cc" "src/CMakeFiles/dbspinner.dir/exec/physical_plan.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/physical_plan.cc.o.d"
  "/root/repo/src/exec/physical_planner.cc" "src/CMakeFiles/dbspinner.dir/exec/physical_planner.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/physical_planner.cc.o.d"
  "/root/repo/src/exec/program_executor.cc" "src/CMakeFiles/dbspinner.dir/exec/program_executor.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/program_executor.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/dbspinner.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/seq_scan.cc" "src/CMakeFiles/dbspinner.dir/exec/seq_scan.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/seq_scan.cc.o.d"
  "/root/repo/src/exec/set_ops.cc" "src/CMakeFiles/dbspinner.dir/exec/set_ops.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/set_ops.cc.o.d"
  "/root/repo/src/exec/sort_limit.cc" "src/CMakeFiles/dbspinner.dir/exec/sort_limit.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/exec/sort_limit.cc.o.d"
  "/root/repo/src/expr/aggregate_functions.cc" "src/CMakeFiles/dbspinner.dir/expr/aggregate_functions.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/expr/aggregate_functions.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/dbspinner.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/scalar_functions.cc" "src/CMakeFiles/dbspinner.dir/expr/scalar_functions.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/expr/scalar_functions.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/dbspinner.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/graph/generator.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/dbspinner.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/reference_algorithms.cc" "src/CMakeFiles/dbspinner.dir/graph/reference_algorithms.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/graph/reference_algorithms.cc.o.d"
  "/root/repo/src/mpp/exchange.cc" "src/CMakeFiles/dbspinner.dir/mpp/exchange.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/mpp/exchange.cc.o.d"
  "/root/repo/src/mpp/parallel_ops.cc" "src/CMakeFiles/dbspinner.dir/mpp/parallel_ops.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/mpp/parallel_ops.cc.o.d"
  "/root/repo/src/mpp/partition.cc" "src/CMakeFiles/dbspinner.dir/mpp/partition.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/mpp/partition.cc.o.d"
  "/root/repo/src/mpp/thread_pool.cc" "src/CMakeFiles/dbspinner.dir/mpp/thread_pool.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/mpp/thread_pool.cc.o.d"
  "/root/repo/src/optimizer/common_result.cc" "src/CMakeFiles/dbspinner.dir/optimizer/common_result.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/common_result.cc.o.d"
  "/root/repo/src/optimizer/constant_fold.cc" "src/CMakeFiles/dbspinner.dir/optimizer/constant_fold.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/constant_fold.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/dbspinner.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/join_simplify.cc" "src/CMakeFiles/dbspinner.dir/optimizer/join_simplify.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/join_simplify.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/dbspinner.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/predicate_pushdown.cc" "src/CMakeFiles/dbspinner.dir/optimizer/predicate_pushdown.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/optimizer/predicate_pushdown.cc.o.d"
  "/root/repo/src/parser/ast.cc" "src/CMakeFiles/dbspinner.dir/parser/ast.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/parser/ast.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/dbspinner.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/dbspinner.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/parser/parser.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/dbspinner.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/dbspinner.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/program.cc" "src/CMakeFiles/dbspinner.dir/plan/program.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/plan/program.cc.o.d"
  "/root/repo/src/rewrite/iterative_rewrite.cc" "src/CMakeFiles/dbspinner.dir/rewrite/iterative_rewrite.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/rewrite/iterative_rewrite.cc.o.d"
  "/root/repo/src/rewrite/recursive_rewrite.cc" "src/CMakeFiles/dbspinner.dir/rewrite/recursive_rewrite.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/rewrite/recursive_rewrite.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/dbspinner.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/column_vector.cc" "src/CMakeFiles/dbspinner.dir/storage/column_vector.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/column_vector.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/dbspinner.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/result_registry.cc" "src/CMakeFiles/dbspinner.dir/storage/result_registry.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/result_registry.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/dbspinner.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/dbspinner.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/dbspinner.dir/storage/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
