# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/csv_copy_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/vectorized_eval_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/sql_end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/sql_features_test[1]_include.cmake")
include("/root/repo/build/tests/iterative_cte_test[1]_include.cmake")
include("/root/repo/build/tests/recursive_cte_test[1]_include.cmake")
include("/root/repo/build/tests/optimization_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workload_property_test[1]_include.cmake")
include("/root/repo/build/tests/plan_printer_test[1]_include.cmake")
include("/root/repo/build/tests/procedure_test[1]_include.cmake")
include("/root/repo/build/tests/transaction_test[1]_include.cmake")
include("/root/repo/build/tests/mpp_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
