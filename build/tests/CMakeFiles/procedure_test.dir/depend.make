# Empty dependencies file for procedure_test.
# This may be replaced when dependencies are built.
