file(REMOVE_RECURSE
  "CMakeFiles/procedure_test.dir/procedure_test.cc.o"
  "CMakeFiles/procedure_test.dir/procedure_test.cc.o.d"
  "procedure_test"
  "procedure_test.pdb"
  "procedure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procedure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
