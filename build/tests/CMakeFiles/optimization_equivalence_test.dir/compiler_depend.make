# Empty compiler generated dependencies file for optimization_equivalence_test.
# This may be replaced when dependencies are built.
