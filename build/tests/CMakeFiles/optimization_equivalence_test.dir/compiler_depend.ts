# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for optimization_equivalence_test.
