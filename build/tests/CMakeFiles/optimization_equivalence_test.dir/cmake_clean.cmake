file(REMOVE_RECURSE
  "CMakeFiles/optimization_equivalence_test.dir/optimization_equivalence_test.cc.o"
  "CMakeFiles/optimization_equivalence_test.dir/optimization_equivalence_test.cc.o.d"
  "optimization_equivalence_test"
  "optimization_equivalence_test.pdb"
  "optimization_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
