file(REMOVE_RECURSE
  "CMakeFiles/plan_printer_test.dir/plan_printer_test.cc.o"
  "CMakeFiles/plan_printer_test.dir/plan_printer_test.cc.o.d"
  "plan_printer_test"
  "plan_printer_test.pdb"
  "plan_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
