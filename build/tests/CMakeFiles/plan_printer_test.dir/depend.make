# Empty dependencies file for plan_printer_test.
# This may be replaced when dependencies are built.
