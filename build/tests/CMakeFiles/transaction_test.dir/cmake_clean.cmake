file(REMOVE_RECURSE
  "CMakeFiles/transaction_test.dir/transaction_test.cc.o"
  "CMakeFiles/transaction_test.dir/transaction_test.cc.o.d"
  "transaction_test"
  "transaction_test.pdb"
  "transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
