# Empty dependencies file for transaction_test.
# This may be replaced when dependencies are built.
