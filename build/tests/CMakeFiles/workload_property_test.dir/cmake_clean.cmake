file(REMOVE_RECURSE
  "CMakeFiles/workload_property_test.dir/workload_property_test.cc.o"
  "CMakeFiles/workload_property_test.dir/workload_property_test.cc.o.d"
  "workload_property_test"
  "workload_property_test.pdb"
  "workload_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
