# Empty compiler generated dependencies file for workload_property_test.
# This may be replaced when dependencies are built.
