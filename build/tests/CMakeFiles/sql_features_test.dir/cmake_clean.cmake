file(REMOVE_RECURSE
  "CMakeFiles/sql_features_test.dir/sql_features_test.cc.o"
  "CMakeFiles/sql_features_test.dir/sql_features_test.cc.o.d"
  "sql_features_test"
  "sql_features_test.pdb"
  "sql_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
