# Empty dependencies file for binder_test.
# This may be replaced when dependencies are built.
