# Empty dependencies file for csv_copy_test.
# This may be replaced when dependencies are built.
