file(REMOVE_RECURSE
  "CMakeFiles/csv_copy_test.dir/csv_copy_test.cc.o"
  "CMakeFiles/csv_copy_test.dir/csv_copy_test.cc.o.d"
  "csv_copy_test"
  "csv_copy_test.pdb"
  "csv_copy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
