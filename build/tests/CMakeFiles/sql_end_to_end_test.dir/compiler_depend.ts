# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sql_end_to_end_test.
