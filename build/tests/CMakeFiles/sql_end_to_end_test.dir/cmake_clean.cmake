file(REMOVE_RECURSE
  "CMakeFiles/sql_end_to_end_test.dir/sql_end_to_end_test.cc.o"
  "CMakeFiles/sql_end_to_end_test.dir/sql_end_to_end_test.cc.o.d"
  "sql_end_to_end_test"
  "sql_end_to_end_test.pdb"
  "sql_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
