# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for iterative_cte_test.
