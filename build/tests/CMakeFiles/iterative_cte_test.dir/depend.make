# Empty dependencies file for iterative_cte_test.
# This may be replaced when dependencies are built.
