file(REMOVE_RECURSE
  "CMakeFiles/iterative_cte_test.dir/iterative_cte_test.cc.o"
  "CMakeFiles/iterative_cte_test.dir/iterative_cte_test.cc.o.d"
  "iterative_cte_test"
  "iterative_cte_test.pdb"
  "iterative_cte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_cte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
