file(REMOVE_RECURSE
  "CMakeFiles/recursive_cte_test.dir/recursive_cte_test.cc.o"
  "CMakeFiles/recursive_cte_test.dir/recursive_cte_test.cc.o.d"
  "recursive_cte_test"
  "recursive_cte_test.pdb"
  "recursive_cte_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_cte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
