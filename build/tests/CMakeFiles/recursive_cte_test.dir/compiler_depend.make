# Empty compiler generated dependencies file for recursive_cte_test.
# This may be replaced when dependencies are built.
