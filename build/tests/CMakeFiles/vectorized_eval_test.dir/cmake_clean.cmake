file(REMOVE_RECURSE
  "CMakeFiles/vectorized_eval_test.dir/vectorized_eval_test.cc.o"
  "CMakeFiles/vectorized_eval_test.dir/vectorized_eval_test.cc.o.d"
  "vectorized_eval_test"
  "vectorized_eval_test.pdb"
  "vectorized_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorized_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
