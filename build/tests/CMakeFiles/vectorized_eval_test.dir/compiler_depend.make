# Empty compiler generated dependencies file for vectorized_eval_test.
# This may be replaced when dependencies are built.
