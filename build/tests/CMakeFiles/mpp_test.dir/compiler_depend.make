# Empty compiler generated dependencies file for mpp_test.
# This may be replaced when dependencies are built.
