file(REMOVE_RECURSE
  "CMakeFiles/mpp_test.dir/mpp_test.cc.o"
  "CMakeFiles/mpp_test.dir/mpp_test.cc.o.d"
  "mpp_test"
  "mpp_test.pdb"
  "mpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
