file(REMOVE_RECURSE
  "CMakeFiles/bench_operators.dir/bench_operators.cc.o"
  "CMakeFiles/bench_operators.dir/bench_operators.cc.o.d"
  "bench_operators"
  "bench_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
