# Empty compiler generated dependencies file for bench_operators.
# This may be replaced when dependencies are built.
