# Empty dependencies file for bench_fig09_common_result.
# This may be replaced when dependencies are built.
