file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_common_result.dir/bench_fig09_common_result.cc.o"
  "CMakeFiles/bench_fig09_common_result.dir/bench_fig09_common_result.cc.o.d"
  "bench_fig09_common_result"
  "bench_fig09_common_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_common_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
