file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_predicate_pushdown.dir/bench_fig10_predicate_pushdown.cc.o"
  "CMakeFiles/bench_fig10_predicate_pushdown.dir/bench_fig10_predicate_pushdown.cc.o.d"
  "bench_fig10_predicate_pushdown"
  "bench_fig10_predicate_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_predicate_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
