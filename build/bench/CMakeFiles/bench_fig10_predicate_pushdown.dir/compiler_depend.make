# Empty compiler generated dependencies file for bench_fig10_predicate_pushdown.
# This may be replaced when dependencies are built.
