# Empty dependencies file for bench_fig08_data_movement.
# This may be replaced when dependencies are built.
