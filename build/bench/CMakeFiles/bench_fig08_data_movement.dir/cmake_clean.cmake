file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_data_movement.dir/bench_fig08_data_movement.cc.o"
  "CMakeFiles/bench_fig08_data_movement.dir/bench_fig08_data_movement.cc.o.d"
  "bench_fig08_data_movement"
  "bench_fig08_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
