file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mpp.dir/bench_ablation_mpp.cc.o"
  "CMakeFiles/bench_ablation_mpp.dir/bench_ablation_mpp.cc.o.d"
  "bench_ablation_mpp"
  "bench_ablation_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
