# Empty compiler generated dependencies file for bench_ablation_mpp.
# This may be replaced when dependencies are built.
