# Empty compiler generated dependencies file for bench_ablation_loop.
# This may be replaced when dependencies are built.
