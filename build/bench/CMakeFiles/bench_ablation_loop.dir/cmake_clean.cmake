file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_loop.dir/bench_ablation_loop.cc.o"
  "CMakeFiles/bench_ablation_loop.dir/bench_ablation_loop.cc.o.d"
  "bench_ablation_loop"
  "bench_ablation_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
