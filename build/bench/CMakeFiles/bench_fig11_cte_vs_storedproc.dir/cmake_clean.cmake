file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cte_vs_storedproc.dir/bench_fig11_cte_vs_storedproc.cc.o"
  "CMakeFiles/bench_fig11_cte_vs_storedproc.dir/bench_fig11_cte_vs_storedproc.cc.o.d"
  "bench_fig11_cte_vs_storedproc"
  "bench_fig11_cte_vs_storedproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cte_vs_storedproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
