# Empty compiler generated dependencies file for bench_fig11_cte_vs_storedproc.
# This may be replaced when dependencies are built.
