file(REMOVE_RECURSE
  "CMakeFiles/pagerank_analytics.dir/pagerank_analytics.cpp.o"
  "CMakeFiles/pagerank_analytics.dir/pagerank_analytics.cpp.o.d"
  "pagerank_analytics"
  "pagerank_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
