# Empty dependencies file for pagerank_analytics.
# This may be replaced when dependencies are built.
