file(REMOVE_RECURSE
  "CMakeFiles/shortest_path_routing.dir/shortest_path_routing.cpp.o"
  "CMakeFiles/shortest_path_routing.dir/shortest_path_routing.cpp.o.d"
  "shortest_path_routing"
  "shortest_path_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortest_path_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
