# Empty dependencies file for shortest_path_routing.
# This may be replaced when dependencies are built.
