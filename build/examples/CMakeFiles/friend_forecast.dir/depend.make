# Empty dependencies file for friend_forecast.
# This may be replaced when dependencies are built.
