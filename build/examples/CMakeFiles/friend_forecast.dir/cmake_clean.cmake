file(REMOVE_RECURSE
  "CMakeFiles/friend_forecast.dir/friend_forecast.cpp.o"
  "CMakeFiles/friend_forecast.dir/friend_forecast.cpp.o.d"
  "friend_forecast"
  "friend_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
