file(REMOVE_RECURSE
  "CMakeFiles/sql_shell.dir/sql_shell.cpp.o"
  "CMakeFiles/sql_shell.dir/sql_shell.cpp.o.d"
  "sql_shell"
  "sql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
