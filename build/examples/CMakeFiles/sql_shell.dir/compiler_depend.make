# Empty compiler generated dependencies file for sql_shell.
# This may be replaced when dependencies are built.
